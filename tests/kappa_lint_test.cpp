/// \file kappa_lint_test.cpp
/// \brief Self-test for the kappa-lint SPMD invariant checker.
///
/// Drives the checker in-process: unit tests for the lexer, the glob
/// matcher, and the rules.kl parser, plus integration tests that run the
/// production rule table against the seeded-violation fixtures under
/// tools/kappa_lint/fixtures/ — one fixture family per check, with the
/// exact rule names and exit codes pinned. The final test lints the real
/// src/ tree: the production tree must stay clean under its own linter.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "kappa_lint/lint.hpp"

namespace kappa_lint {
namespace {

// --------------------------------------------------------------- lexer ----

TEST(LintLexer, StripsCommentsStringsAndPreprocessor) {
  const std::string source =
      "#include \"parallel/pe_runtime.hpp\"\n"
      "// all_gather in a comment is not a call\n"
      "/* neither is all_gather\n"
      "   in a block comment */\n"
      "const char* s = \"all_gather(\";\n"
      "int x = pe.all_gather(1);\n";
  const SourceFile file = lex_file("parallel/foo.cpp", source);

  ASSERT_EQ(file.includes.size(), 1u);
  EXPECT_EQ(file.includes[0].header, "parallel/pe_runtime.hpp");
  EXPECT_EQ(file.includes[0].line, 1);

  int gather_tokens = 0;
  for (const Token& tok : file.tokens) {
    if (tok.text == "all_gather") {
      ++gather_tokens;
      EXPECT_EQ(tok.line, 6);
    }
  }
  EXPECT_EQ(gather_tokens, 1);
}

TEST(LintLexer, ParsesAllowAnnotations) {
  const std::string source =
      "int a;  // kappa-lint: allow(no-partition-gathers, \"why not\")\n"
      "int b;  // kappa-lint: allow(no-partition-gathers)\n";
  const SourceFile file = lex_file("parallel/foo.cpp", source);
  ASSERT_EQ(file.allows.size(), 2u);
  EXPECT_FALSE(file.allows[0].malformed);
  EXPECT_EQ(file.allows[0].rule, "no-partition-gathers");
  EXPECT_EQ(file.allows[0].reason, "why not");
  EXPECT_EQ(file.allows[0].line, 1);
  EXPECT_TRUE(file.allows[1].malformed);  // reason string is mandatory
}

// ---------------------------------------------------------------- globs ----

TEST(LintGlob, SegmentsAndRecursion) {
  EXPECT_TRUE(glob_match("parallel/dist_*.cpp", "parallel/dist_partition.cpp"));
  EXPECT_FALSE(glob_match("parallel/dist_*.cpp", "parallel/nested/dist_x.cpp"));
  EXPECT_TRUE(glob_match("refinement/**", "refinement/fm.cpp"));
  EXPECT_TRUE(glob_match("refinement/**", "refinement/sub/fm.cpp"));
  EXPECT_FALSE(glob_match("refinement/**", "coarsening/fm.cpp"));
  EXPECT_TRUE(glob_match("**", "a/b/c.hpp"));
}

// ---------------------------------------------------------------- rules ----

TEST(LintRules, RejectsUnknownKindAndDuplicateNames) {
  RuleTable table;
  std::string error;
  EXPECT_FALSE(parse_rules("rule x frobnicate {\n  files = **\n}\n", table,
                           error));
  EXPECT_NE(error.find("frobnicate"), std::string::npos);

  const std::string dup =
      "rule x forbid-symbol {\n  files = **\n  symbols = A\n}\n"
      "rule x forbid-symbol {\n  files = **\n  symbols = B\n}\n";
  error.clear();
  EXPECT_FALSE(parse_rules(dup, table, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

// ------------------------------------------------------------- fixtures ----

std::string tool_dir() { return KAPPA_LINT_TOOL_DIR; }

Report lint_fixture(const std::string& name) {
  Options options;
  options.rules_path = tool_dir() + "/rules.kl";
  options.roots = {tool_dir() + "/fixtures/" + name};
  std::ostringstream diag;
  Report report = run(options, diag);
  SCOPED_TRACE(diag.str());
  return report;
}

std::map<std::string, int> count_by_rule(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& finding : report.findings) ++counts[finding.rule];
  return counts;
}

TEST(LintFixtures, CleanTreePasses) {
  const Report report = lint_fixture("clean");
  EXPECT_EQ(report.exit_code, 0);
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintFixtures, LayeringViolationsFire) {
  const Report report = lint_fixture("layering");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // dist_partition.cpp: socket + channel + transport_tcp includes.
  EXPECT_EQ(counts.at("no-transport-internals"), 3);
  EXPECT_EQ(counts.at("no-mailbox-above-transport"), 1);
  // fm.cpp: pe_runtime fires, the sanctioned comm_stats include does not.
  EXPECT_EQ(counts.at("layer-no-parallel-in-sequential"), 1);
  EXPECT_EQ(report.findings.size(), 5u);
}

TEST(LintFixtures, SectionGatherViolationsFire) {
  const Report report = lint_fixture("gathers");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  EXPECT_EQ(counts.at("no-coarsening-gathers"), 1);
  // The async gather lies inside the refinement region too (the section
  // nests), so it fires both rules; the initial-partitioning gather
  // between the markers fires neither.
  EXPECT_EQ(counts.at("no-refinement-block-gathers"), 2);
  EXPECT_EQ(counts.at("no-async-gathers"), 1);
  // An allow() targeting the unsuppressible async rule is itself flagged.
  EXPECT_EQ(counts.at("malformed-suppression"), 1);
  EXPECT_EQ(report.findings.size(), 5u);
}

TEST(LintFixtures, RemovedEntryPointsFire) {
  const Report report = lint_fixture("entrypoints");
  EXPECT_EQ(report.exit_code, 1);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "no-removed-entry-points");
}

TEST(LintFixtures, CollectiveDivergenceFires) {
  const Report report = lint_fixture("divergence");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // if-block, else branch, else-if, and braceless single statement; the
  // rank-free guard and the unconditional barrier stay silent.
  EXPECT_EQ(counts.at("collective-divergence"), 4);
  EXPECT_EQ(report.findings.size(), 4u);
}

TEST(LintFixtures, DeterminismSourcesFire) {
  const Report report = lint_fixture("determinism");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // Entropy, wall clock, pointer-keyed hashing, hash-order range-for;
  // keyed lookups into unordered containers stay silent. The wall-clock
  // read additionally fires the clock-confinement rule (same hazard seen
  // from the tracing side).
  EXPECT_EQ(counts.at("determinism-sources"), 4);
  EXPECT_EQ(counts.at("trace-clock-confinement"), 1);
  EXPECT_EQ(report.findings.size(), 5u);
}

TEST(LintFixtures, TraceClockConfinementFires) {
  const Report report = lint_fixture("trace_clock");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // Each raw clock read in a partition-reaching layer is both a timing
  // side channel and a nondeterminism source; the transport carve-out
  // file stays silent under both rules.
  EXPECT_EQ(counts.at("trace-clock-confinement"), 2);
  EXPECT_EQ(counts.at("determinism-sources"), 2);
  EXPECT_EQ(report.findings.size(), 4u);
}

TEST(LintFixtures, TraceFeedbackFires) {
  const Report report = lint_fixture("trace_feedback");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // read_dropped, read_events, and a MetricsRegistry read in algorithm
  // layers; writing spans never fires.
  EXPECT_EQ(counts.at("trace-no-feedback"), 3);
  EXPECT_EQ(report.findings.size(), 3u);
}

TEST(LintFixtures, HeartbeatLaneIsolationFires) {
  const Report report = lint_fixture("heartbeat");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // Liveness-steered pairing, a payload on the observer-only heartbeat
  // lane, and backlog-adaptive draining — each a feedback channel from
  // the watch layer into the partition; the sanctioned app-lane send
  // stays silent.
  EXPECT_EQ(counts.at("heartbeat-lane-isolation"), 3);
  EXPECT_EQ(report.findings.size(), 3u);
}

TEST(LintFixtures, ValidSuppressionsSilenceFindings) {
  const Report report = lint_fixture("suppress_valid");
  EXPECT_EQ(report.exit_code, 0);
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintFixtures, StaleSuppressionIsAnError) {
  const Report report = lint_fixture("suppress_stale");
  EXPECT_EQ(report.exit_code, 1);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "stale-suppression");
}

TEST(LintFixtures, MalformedSuppressionsAreErrors) {
  const Report report = lint_fixture("suppress_malformed");
  EXPECT_EQ(report.exit_code, 1);
  const auto counts = count_by_rule(report);
  // A missing reason and an unknown check name — and neither annotation
  // suppresses, so the underlying findings fire as well.
  EXPECT_EQ(counts.at("malformed-suppression"), 2);
  EXPECT_EQ(counts.at("determinism-sources"), 2);
  EXPECT_EQ(report.findings.size(), 4u);
}

// ---------------------------------------------------------------- driver ----

TEST(LintDriver, MissingRuleTableIsConfigError) {
  Options options;
  options.rules_path = tool_dir() + "/no-such-rules.kl";
  options.roots = {tool_dir() + "/fixtures/clean"};
  std::ostringstream diag;
  EXPECT_EQ(run(options, diag).exit_code, 2);
}

TEST(LintDriver, SelfCheckEnforcesMinimumTableSize) {
  Options options;
  options.rules_path = tool_dir() + "/rules.kl";
  options.self_check = true;
  options.min_rules = 14;  // former CI guards + new families + trace + watch
  std::ostringstream diag;
  const Report report = run(options, diag);
  EXPECT_EQ(report.exit_code, 0) << diag.str();
  EXPECT_GE(report.rules_loaded, 14u);

  options.min_rules = 1000;
  std::ostringstream diag2;
  EXPECT_EQ(run(options, diag2).exit_code, 2);
}

// The acceptance gate: the production tree is clean under its own linter.
TEST(LintDriver, RealSourceTreeIsClean) {
  Options options;
  options.rules_path = tool_dir() + "/rules.kl";
  options.roots = {KAPPA_LINT_SRC_DIR};
  std::ostringstream diag;
  const Report report = run(options, diag);
  EXPECT_EQ(report.exit_code, 0) << diag.str();
}

}  // namespace
}  // namespace kappa_lint
