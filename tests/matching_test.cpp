/// \file matching_test.cpp
/// \brief Tests for edge ratings, the three sequential matchers and the
/// two-phase parallel matcher, including approximation-ratio checks
/// against brute force on small graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "coarsening/prepartition.hpp"
#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/validation.hpp"
#include "matching/matchers.hpp"
#include "matching/parallel_match.hpp"
#include "matching/ratings.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

/// Exact maximum rating matching by exhaustive search (small graphs only).
double brute_force_max_matching(const StaticGraph& g, EdgeRating rating) {
  const std::vector<RatedEdge> edges = collect_rated_edges(g, rating);
  double best = 0.0;
  const std::size_t m = edges.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::uint32_t used = 0;  // node bitmap (n <= 32)
    double value = 0.0;
    bool valid = true;
    for (std::size_t i = 0; i < m && valid; ++i) {
      if (!(mask & (std::uint64_t{1} << i))) continue;
      const std::uint32_t pair =
          (1u << edges[i].u) | (1u << edges[i].v);
      if (used & pair) {
        valid = false;
      } else {
        used |= pair;
        value += edges[i].rating;
      }
    }
    if (valid) best = std::max(best, value);
  }
  return best;
}

// -------------------------------------------------------------- ratings ----

TEST(Ratings, FormulasMatchPaperDefinitions) {
  // edge {u,v}: w=6, c(u)=2, c(v)=3, Out(u)=10, Out(v)=8.
  EXPECT_DOUBLE_EQ(rate_edge(EdgeRating::kWeight, 6, 2, 3, 10, 8), 6.0);
  EXPECT_DOUBLE_EQ(rate_edge(EdgeRating::kExpansion, 6, 2, 3, 10, 8),
                   6.0 / 5.0);
  EXPECT_DOUBLE_EQ(rate_edge(EdgeRating::kExpansionStar, 6, 2, 3, 10, 8),
                   1.0);
  EXPECT_DOUBLE_EQ(rate_edge(EdgeRating::kExpansionStar2, 6, 2, 3, 10, 8),
                   6.0);
  // innerOuter: 6 / (10 + 8 - 12) = 1.
  EXPECT_DOUBLE_EQ(rate_edge(EdgeRating::kInnerOuter, 6, 2, 3, 10, 8), 1.0);
}

TEST(Ratings, InnerOuterIsolatedPairGetsHugeRating) {
  // Out(u) + Out(v) - 2w == 0: the pair has no outer edges.
  EXPECT_GT(rate_edge(EdgeRating::kInnerOuter, 4, 1, 1, 4, 4), 1e10);
}

TEST(Ratings, ExpansionPenalizesHeavyNodes) {
  const double light = rate_edge(EdgeRating::kExpansionStar2, 3, 1, 1, 0, 0);
  const double heavy = rate_edge(EdgeRating::kExpansionStar2, 3, 10, 10, 0, 0);
  EXPECT_GT(light, heavy);
}

TEST(Ratings, CollectRatedEdgesCoversEveryEdgeOnce) {
  Rng rng(1);
  const StaticGraph g = random_geometric_graph(200, 0.1, rng);
  const auto edges = collect_rated_edges(g, EdgeRating::kExpansionStar2);
  EXPECT_EQ(edges.size(), g.num_edges());
  for (const RatedEdge& e : edges) EXPECT_LT(e.u, e.v);
}

// ------------------------------------------------------------- matchers ----

/// Validity and weight-bound compliance for every matcher x rating combo.
class MatcherProperty
    : public ::testing::TestWithParam<std::tuple<MatcherAlgo, EdgeRating>> {};

TEST_P(MatcherProperty, ProducesValidMatching) {
  const auto& [algo, rating] = GetParam();
  Rng graph_rng(3);
  const StaticGraph g = random_geometric_graph(800, 0.06, graph_rng);
  MatchingOptions options;
  options.rating = rating;
  Rng rng(9);
  const auto partner = compute_matching(g, algo, options, rng);
  EXPECT_EQ(validate_matching(g, partner), "");
  EXPECT_GT(matching_size(partner), g.num_nodes() / 4);
}

TEST_P(MatcherProperty, RespectsPairWeightBound) {
  const auto& [algo, rating] = GetParam();
  GraphBuilder builder(6);
  builder.add_edge(0, 1, 100);
  builder.add_edge(2, 3, 100);
  builder.add_edge(4, 5, 100);
  builder.set_node_weight(0, 10);
  builder.set_node_weight(1, 10);
  const StaticGraph g = builder.finalize();
  MatchingOptions options;
  options.rating = rating;
  options.max_pair_weight = 5;  // forbids the heavy pair {0,1}
  Rng rng(2);
  const auto partner = compute_matching(g, algo, options, rng);
  EXPECT_EQ(partner[0], 0u);
  EXPECT_EQ(partner[1], 1u);
  EXPECT_EQ(partner[2], 3u);
  EXPECT_EQ(partner[4], 5u);
}

TEST_P(MatcherProperty, BlockConstraintFiltersDuringRating) {
  // Warm-start coarsening: with the block constraint the matcher never
  // proposes a cross-block pair — and because the filter runs during
  // rating (not after matching), a boundary node picks its best
  // intra-block partner instead of staying unmatched.
  const auto& [algo, rating] = GetParam();
  Rng graph_rng(5);
  const StaticGraph g = random_geometric_graph(800, 0.06, graph_rng);
  std::vector<BlockID> blocks(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) blocks[u] = u % 2;

  MatchingOptions options;
  options.rating = rating;
  options.blocks = &blocks;
  Rng rng(9);
  const auto constrained = compute_matching(g, algo, options, rng);
  EXPECT_EQ(validate_matching(g, constrained), "");
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    ASSERT_TRUE(constrained[u] == u || blocks[u] == blocks[constrained[u]]);
  }

  // Baseline: the old policy matched unconstrained and dissolved every
  // cross-block pair afterwards. Rating-time filtering must never do
  // worse, and on this half/half split it finds strictly more pairs.
  options.blocks = nullptr;
  Rng rng2(9);
  auto dissolved = compute_matching(g, algo, options, rng2);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    const NodeID v = dissolved[u];
    if (v > u && blocks[u] != blocks[v]) {
      dissolved[u] = u;
      dissolved[v] = v;
    }
  }
  EXPECT_GT(matching_size(constrained), matching_size(dissolved));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MatcherProperty,
    ::testing::Combine(::testing::Values(MatcherAlgo::kSHEM,
                                         MatcherAlgo::kGreedy,
                                         MatcherAlgo::kGPA),
                       ::testing::Values(EdgeRating::kWeight,
                                         EdgeRating::kExpansion,
                                         EdgeRating::kExpansionStar,
                                         EdgeRating::kExpansionStar2,
                                         EdgeRating::kInnerOuter)));

TEST(Greedy, HalfApproximationOnRandomSmallGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    GraphBuilder builder(10);
    for (int i = 0; i < 14; ++i) {
      const NodeID u = static_cast<NodeID>(rng.bounded(10));
      const NodeID v = static_cast<NodeID>(rng.bounded(10));
      if (u != v) builder.add_edge(u, v, 1 + rng.bounded(20));
    }
    const StaticGraph g = builder.finalize();
    if (g.num_edges() == 0 || g.num_edges() > 16) continue;
    const double optimum = brute_force_max_matching(g, EdgeRating::kWeight);
    MatchingOptions options;
    options.rating = EdgeRating::kWeight;
    Rng mrng(seed + 100);
    const auto partner =
        compute_matching(g, MatcherAlgo::kGreedy, options, mrng);
    const double value = matching_rating(g, partner, EdgeRating::kWeight);
    EXPECT_GE(value + 1e-9, 0.5 * optimum) << "seed " << seed;
  }
}

TEST(GPA, HalfApproximationOnRandomSmallGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 31 + 7);
    GraphBuilder builder(10);
    for (int i = 0; i < 14; ++i) {
      const NodeID u = static_cast<NodeID>(rng.bounded(10));
      const NodeID v = static_cast<NodeID>(rng.bounded(10));
      if (u != v) builder.add_edge(u, v, 1 + rng.bounded(20));
    }
    const StaticGraph g = builder.finalize();
    if (g.num_edges() == 0 || g.num_edges() > 16) continue;
    const double optimum = brute_force_max_matching(g, EdgeRating::kWeight);
    MatchingOptions options;
    options.rating = EdgeRating::kWeight;
    Rng mrng(seed + 200);
    const auto partner = compute_matching(g, MatcherAlgo::kGPA, options, mrng);
    const double value = matching_rating(g, partner, EdgeRating::kWeight);
    EXPECT_GE(value + 1e-9, 0.5 * optimum) << "seed " << seed;
  }
}

TEST(GPA, OptimalOnPaths) {
  // GPA solves paths by DP, so on a path graph it must be optimal.
  GraphBuilder builder(6);
  builder.add_edge(0, 1, 5);
  builder.add_edge(1, 2, 9);
  builder.add_edge(2, 3, 5);
  builder.add_edge(3, 4, 9);
  builder.add_edge(4, 5, 5);
  const StaticGraph g = builder.finalize();
  MatchingOptions options;
  options.rating = EdgeRating::kWeight;
  Rng rng(1);
  const auto partner = compute_matching(g, MatcherAlgo::kGPA, options, rng);
  // Optimum is {1,2} + {3,4} = 18 (not the greedy-looking 5+5+5).
  EXPECT_DOUBLE_EQ(matching_rating(g, partner, EdgeRating::kWeight), 18.0);
}

TEST(GPA, OptimalOnEvenCycle) {
  // 4-cycle with weights 10, 1, 10, 1: optimum picks the two 10s.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 1);
  builder.add_edge(2, 3, 10);
  builder.add_edge(3, 0, 1);
  const StaticGraph g = builder.finalize();
  MatchingOptions options;
  options.rating = EdgeRating::kWeight;
  Rng rng(4);
  const auto partner = compute_matching(g, MatcherAlgo::kGPA, options, rng);
  EXPECT_DOUBLE_EQ(matching_rating(g, partner, EdgeRating::kWeight), 20.0);
}

TEST(GPA, BeatsOrMatchesGreedyOnAverage) {
  // The paper's empirical claim (§3.2): GPA gives considerably better
  // matchings than plain Greedy. Compare total rating over a batch.
  double gpa_total = 0;
  double greedy_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng graph_rng(seed);
    const StaticGraph g = random_geometric_graph(1500, 0.05, graph_rng);
    MatchingOptions options;
    options.rating = EdgeRating::kExpansionStar2;
    Rng rng_a(seed + 1);
    Rng rng_b(seed + 1);
    gpa_total += matching_rating(
        g, compute_matching(g, MatcherAlgo::kGPA, options, rng_a),
        options.rating);
    greedy_total += matching_rating(
        g, compute_matching(g, MatcherAlgo::kGreedy, options, rng_b),
        options.rating);
  }
  EXPECT_GE(gpa_total, greedy_total);
}

TEST(SHEM, ScansByDegreeAndTakesOnlyAvailableEdges) {
  // Degree-1 nodes 2 and 3 are scanned first (SHEM scans by increasing
  // degree); each takes its single incident edge, which fully determines
  // the matching regardless of tie-breaking.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);
  builder.add_edge(0, 2, 9);
  builder.add_edge(1, 3, 5);
  const StaticGraph g = builder.finalize();
  MatchingOptions options;
  options.rating = EdgeRating::kWeight;
  Rng rng(1);
  const auto partner = compute_matching(g, MatcherAlgo::kSHEM, options, rng);
  EXPECT_EQ(partner[0], 2u);
  EXPECT_EQ(partner[1], 3u);
}

TEST(SHEM, ScannedNodePrefersHighestRatedNeighbor) {
  // Node 3 (degree 1) is scanned first and takes {3,2}; next the degree-2
  // nodes: whichever of 0/1 comes first picks its heaviest *available*
  // edge, which is {0,1} (w=7) for both.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 7);
  builder.add_edge(0, 2, 3);
  builder.add_edge(1, 2, 2);
  builder.add_edge(2, 3, 1);
  const StaticGraph g = builder.finalize();
  MatchingOptions options;
  options.rating = EdgeRating::kWeight;
  Rng rng(2);
  const auto partner = compute_matching(g, MatcherAlgo::kSHEM, options, rng);
  EXPECT_EQ(partner[3], 2u);
  EXPECT_EQ(partner[0], 1u);
}

// ----------------------------------------------------- parallel matching ----

TEST(ParallelMatching, ValidAcrossPECounts) {
  Rng graph_rng(5);
  const StaticGraph g = random_geometric_graph(2000, 0.04, graph_rng);
  for (const BlockID pes : {2u, 4u, 8u}) {
    const auto homes = prepartition(g, pes);
    MatchingOptions options;
    Rng rng(17);
    ParallelMatchingStats stats;
    const auto partner = parallel_matching(g, homes, pes, MatcherAlgo::kGPA,
                                           options, rng, &stats);
    EXPECT_EQ(validate_matching(g, partner), "") << pes << " PEs";
    EXPECT_GT(stats.local_pairs, 0u) << pes << " PEs";
    EXPECT_GT(matching_size(partner), g.num_nodes() / 4) << pes << " PEs";
  }
}

TEST(ParallelMatching, GapEdgesGetMatchedWhenDominant) {
  // Two PEs; the only heavy edge crosses the boundary — it must win.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);   // PE 0 internal
  builder.add_edge(2, 3, 1);   // PE 1 internal
  builder.add_edge(1, 2, 50);  // crossing, dominant
  const StaticGraph g = builder.finalize();
  const std::vector<BlockID> homes = {0, 0, 1, 1};
  MatchingOptions options;
  options.rating = EdgeRating::kWeight;
  Rng rng(3);
  ParallelMatchingStats stats;
  const auto partner = parallel_matching(g, homes, 2, MatcherAlgo::kGreedy,
                                         options, rng, &stats);
  EXPECT_EQ(partner[1], 2u);
  EXPECT_EQ(partner[2], 1u);
  EXPECT_EQ(stats.gap_pairs, 1u);
  // The tentative local matches of 1 and 2 were dissolved.
  EXPECT_EQ(partner[0], 0u);
  EXPECT_EQ(partner[3], 3u);
}

TEST(ParallelMatching, NoGapPhaseWhenLocalDominates) {
  // Crossing edge is lighter than both local matches: gap graph is empty.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 50);
  builder.add_edge(2, 3, 50);
  builder.add_edge(1, 2, 1);
  const StaticGraph g = builder.finalize();
  const std::vector<BlockID> homes = {0, 0, 1, 1};
  MatchingOptions options;
  options.rating = EdgeRating::kWeight;
  Rng rng(3);
  ParallelMatchingStats stats;
  const auto partner = parallel_matching(g, homes, 2, MatcherAlgo::kGreedy,
                                         options, rng, &stats);
  EXPECT_EQ(stats.gap_edges, 0u);
  EXPECT_EQ(partner[0], 1u);
  EXPECT_EQ(partner[2], 3u);
}

TEST(ParallelMatching, QualityCloseToSequential) {
  // The two-phase scheme may lose a little rating vs. sequential GPA but
  // not much — that is the point of the gap graph (§3.3).
  Rng graph_rng(8);
  const StaticGraph g = random_geometric_graph(3000, 0.035, graph_rng);
  MatchingOptions options;
  Rng rng_seq(21);
  const double seq = matching_rating(
      g, compute_matching(g, MatcherAlgo::kGPA, options, rng_seq),
      options.rating);
  const auto homes = prepartition(g, 8);
  Rng rng_par(21);
  const double par = matching_rating(
      g,
      parallel_matching(g, homes, 8, MatcherAlgo::kGPA, options, rng_par),
      options.rating);
  EXPECT_GT(par, 0.85 * seq);
}

}  // namespace
}  // namespace kappa
