/// \file partitioner_api_test.cpp
/// \brief Tests for the unified Context/Partitioner API: repartitioning
/// runs through the phase interfaces (warm-started multilevel pipeline)
/// in both execution contexts, and the SPMD repartitioner keeps the
/// determinism contract of the from-scratch pipeline (fixed seed =>
/// identical partition and migration count for every PE count).
#include <gtest/gtest.h>

#include <numeric>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

/// Moves ~5% of the nodes to random blocks — the stand-in for an adaptive
/// mesh step degrading an existing assignment.
Partition perturb(const StaticGraph& g, const Partition& p, BlockID k,
                  std::uint64_t seed) {
  Partition perturbed = p;
  Rng rng(seed);
  for (NodeID i = 0; i < g.num_nodes() / 20; ++i) {
    const NodeID u = static_cast<NodeID>(rng.bounded(g.num_nodes()));
    const BlockID to = static_cast<BlockID>(rng.bounded(k));
    if (perturbed.block(u) != to) perturbed.move(u, to, g.node_weight(u));
  }
  return perturbed;
}

// ----------------------------------------------------------- the Context ----

TEST(Context, CarriesConfigAndRuntime) {
  Config config = Config::preset(Preset::kFast, 4);
  config.seed = 7;

  const Context sequential = Context::sequential(config);
  EXPECT_FALSE(sequential.is_spmd());
  EXPECT_EQ(sequential.runtime(), nullptr);
  EXPECT_EQ(sequential.config().k, 4u);
  EXPECT_EQ(sequential.config().seed, 7u);

  PERuntime runtime(2, config.seed);
  const Context spmd = Context::spmd(config, runtime);
  EXPECT_TRUE(spmd.is_spmd());
  EXPECT_EQ(spmd.runtime(), &runtime);
}

// -------------------------------------- repartitioning through the phases ----

TEST(PartitionerRepartition, RunsTheMultilevelPipeline) {
  const StaticGraph g = make_instance("grid_m", 5);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 3;
  const Partitioner partitioner(Context::sequential(config));
  const PartitionResult fresh = partitioner.partition(g);
  const Partition perturbed = perturb(g, fresh.partition, 8, 13);
  const EdgeWeight perturbed_cut = edge_cut(g, perturbed);

  const PartitionResult result = partitioner.repartition(g, perturbed);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_EQ(result.initial_cut, perturbed_cut);
  EXPECT_LT(result.cut, perturbed_cut);
  EXPECT_TRUE(result.balanced) << "balance " << result.balance;
  // Warm starts now coarsen too: the hierarchy shape is reported like on
  // any other run.
  EXPECT_GE(result.hierarchy_levels, 1u);
  EXPECT_GT(result.coarsest_nodes, 0u);
}

TEST(PartitionerRepartition, MigratesStrictlyLessThanFromScratch) {
  const StaticGraph g = make_instance("rgg14", 9);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;
  const Partitioner partitioner(Context::sequential(config));
  const PartitionResult fresh = partitioner.partition(g);
  const Partition perturbed = perturb(g, fresh.partition, 8, 21);

  // A from-scratch run on the perturbed instance: migration is the
  // number of nodes whose block differs from the input assignment.
  Config rerun = config;
  rerun.seed = 6;
  const PartitionResult scratch =
      Partitioner(Context::sequential(rerun)).partition(g);
  NodeID scratch_migration = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    if (scratch.partition.block(u) != perturbed.block(u)) ++scratch_migration;
  }

  const PartitionResult result = partitioner.repartition(g, perturbed);
  EXPECT_LT(result.migrated_nodes, scratch_migration);
}

// ------------------------------------------------------ SPMD repartition ----

TEST(SpmdRepartition, ImprovesCutAndRestoresFeasibility) {
  const StaticGraph g = make_instance("rgg14", 7);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 2;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);
  const Partition perturbed = perturb(g, fresh.partition, 8, 17);
  const EdgeWeight perturbed_cut = edge_cut(g, perturbed);

  PERuntime runtime(4, config.seed);
  const PartitionResult result =
      Partitioner(Context::spmd(config, runtime)).repartition(g, perturbed);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_EQ(result.initial_cut, perturbed_cut);
  EXPECT_LT(result.cut, perturbed_cut);
  EXPECT_TRUE(result.balanced) << "balance " << result.balance;
  EXPECT_EQ(result.num_pes, 4);
  ASSERT_EQ(result.comm_per_pe.size(), 4u);
  EXPECT_GT(result.comm.barriers, 0u);
}

TEST(SpmdRepartition, IsPInvariantWithMigrationAccounting) {
  // The determinism contract of spmd_pipeline_test, extended to the
  // warm-started pipeline: a fixed seed yields the identical partition
  // *and* the identical migration count for every PE count; the per-PE
  // migration split always sums to the total.
  const StaticGraph g = make_instance("delaunay14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);
  const Partition perturbed = perturb(g, fresh.partition, 8, 19);

  PartitionResult reference;
  for (const int p : {1, 2, 3, 4, 9}) {  // ragged p and p > k included
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).repartition(g, perturbed);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    ASSERT_EQ(result.migrated_per_pe.size(), static_cast<std::size_t>(p));
    ASSERT_EQ(result.migrated_edges_per_pe.size(),
              static_cast<std::size_t>(p));
    const NodeID split_total = std::accumulate(
        result.migrated_per_pe.begin(), result.migrated_per_pe.end(),
        NodeID{0});
    EXPECT_EQ(split_total, result.migrated_nodes) << "p=" << p;
    if (p == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.cut, reference.cut) << "p=" << p;
    EXPECT_EQ(result.migrated_nodes, reference.migrated_nodes) << "p=" << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(result.partition.block(u), reference.partition.block(u))
          << "p=" << p << " node " << u;
    }
  }
}

TEST(SpmdRepartition, IncrementalMigrationViewMatchesPostHocComputation) {
  // The refiner's migration view is sealed from its incrementally
  // maintained finest-level store; the numbers must equal what the
  // post-hoc replica computation (receive_migrated_nodes, kept as the
  // oracle) derives from the final assignment.
  const StaticGraph g = make_instance("rgg14", 5);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 4;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);
  const Partition perturbed = perturb(g, fresh.partition, 8, 29);

  for (const int p : {1, 3, 4}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).repartition(g, perturbed);
    ASSERT_EQ(result.migrated_per_pe.size(), static_cast<std::size_t>(p));
    for (int rank = 0; rank < p; ++rank) {
      const MigrationIntake oracle =
          receive_migrated_nodes(g, perturbed, result.partition, rank, p);
      EXPECT_EQ(result.migrated_per_pe[rank], oracle.nodes)
          << "p=" << p << " rank " << rank;
      EXPECT_EQ(result.migrated_edges_per_pe[rank], oracle.edges)
          << "p=" << p << " rank " << rank;
    }
  }
}

TEST(SpmdRepartition, MigratesStrictlyLessThanSpmdFromScratch) {
  const StaticGraph g = make_instance("rgg14", 3);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 8;
  const PartitionResult fresh =
      Partitioner(Context::sequential(config)).partition(g);
  const Partition perturbed = perturb(g, fresh.partition, 8, 23);

  Config rerun = config;
  rerun.seed = 9;
  PERuntime scratch_runtime(2, rerun.seed);
  const PartitionResult scratch =
      Partitioner(Context::spmd(rerun, scratch_runtime)).partition(g);
  NodeID scratch_migration = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    if (scratch.partition.block(u) != perturbed.block(u)) ++scratch_migration;
  }

  PERuntime runtime(2, config.seed);
  const PartitionResult result =
      Partitioner(Context::spmd(config, runtime)).repartition(g, perturbed);
  EXPECT_LT(result.migrated_nodes, scratch_migration);
}

}  // namespace
}  // namespace kappa
