/// \file pe_runtime_test.cpp
/// \brief Tests for the thread-based PE runtime (the MPI substitute) and
/// the distributed edge-coloring protocol running on it.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "generators/generators.hpp"
#include "graph/quotient_graph.hpp"
#include "parallel/dist_coloring.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/shard_graph.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

TEST(PERuntime, RanksAreDistinctAndComplete) {
  PERuntime runtime(6);
  std::atomic<std::uint64_t> rank_mask{0};
  runtime.run([&](PEContext& pe) {
    rank_mask.fetch_or(std::uint64_t{1} << pe.rank());
    EXPECT_EQ(pe.size(), 6);
  });
  EXPECT_EQ(rank_mask.load(), 0b111111u);
}

TEST(PERuntime, PingPong) {
  PERuntime runtime(2);
  runtime.run([&](PEContext& pe) {
    if (pe.rank() == 0) {
      pe.send(1, {42, 7});
      const Message reply = pe.receive(1);
      EXPECT_EQ(reply.payload, (std::vector<std::uint64_t>{43, 8}));
    } else {
      const Message msg = pe.receive(0);
      EXPECT_EQ(msg.source, 0);
      pe.send(0, {msg.payload[0] + 1, msg.payload[1] + 1});
    }
  });
}

TEST(PERuntime, FIFOPerSource) {
  PERuntime runtime(2);
  runtime.run([&](PEContext& pe) {
    if (pe.rank() == 0) {
      for (std::uint64_t i = 0; i < 100; ++i) pe.send(1, {i});
    } else {
      for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(pe.receive(0).payload[0], i);
      }
    }
  });
}

TEST(PERuntime, ManyToOneGather) {
  PERuntime runtime(8);
  runtime.run([&](PEContext& pe) {
    if (pe.rank() != 0) {
      pe.send(0, {static_cast<std::uint64_t>(pe.rank())});
    } else {
      std::uint64_t sum = 0;
      for (int i = 1; i < 8; ++i) sum += pe.receive(-1).payload[0];
      EXPECT_EQ(sum, 1u + 2 + 3 + 4 + 5 + 6 + 7);
    }
  });
}

TEST(PERuntime, AllReduceSumAndMax) {
  PERuntime runtime(5);
  runtime.run([&](PEContext& pe) {
    const std::uint64_t rank = static_cast<std::uint64_t>(pe.rank());
    EXPECT_EQ(pe.all_reduce_sum(rank + 1), 15u);
    EXPECT_EQ(pe.all_reduce_max(rank * 10), 40u);
    // Repeated collectives stay consistent (barrier discipline).
    EXPECT_EQ(pe.all_reduce_sum(1), 5u);
  });
}

TEST(PERuntime, AllGatherOrdersByRank) {
  PERuntime runtime(4);
  runtime.run([&](PEContext& pe) {
    const auto gathered =
        pe.all_gather(static_cast<std::uint64_t>(pe.rank()) * 2);
    EXPECT_EQ(gathered, (std::vector<std::uint64_t>{0, 2, 4, 6}));
  });
}

TEST(PERuntime, AllGatherVectorsOrdersByRankWithRaggedLengths) {
  PERuntime runtime(4);
  runtime.run([&](PEContext& pe) {
    // Rank r contributes r words (rank 0 an empty buffer).
    std::vector<std::uint64_t> payload(
        static_cast<std::size_t>(pe.rank()),
        static_cast<std::uint64_t>(pe.rank()) * 100);
    const auto gathered = pe.all_gather_vectors(payload);
    ASSERT_EQ(gathered.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(gathered[r].size(), static_cast<std::size_t>(r));
      for (const std::uint64_t w : gathered[r]) {
        EXPECT_EQ(w, static_cast<std::uint64_t>(r) * 100);
      }
    }
  });
}

TEST(PERuntime, AllGatherVectorsRepeatsStayConsistent) {
  PERuntime runtime(3);
  runtime.run([&](PEContext& pe) {
    for (std::uint64_t round = 0; round < 10; ++round) {
      const auto gathered = pe.all_gather_vectors(
          {round, static_cast<std::uint64_t>(pe.rank())});
      for (int r = 0; r < 3; ++r) {
        ASSERT_EQ(gathered[r],
                  (std::vector<std::uint64_t>{
                      round, static_cast<std::uint64_t>(r)}));
      }
    }
  });
}

TEST(PERuntime, AllGatherVectorsCountsTraffic) {
  PERuntime runtime(2);
  const std::vector<CommStats> per_rank = runtime.run([&](PEContext& pe) {
    (void)pe.all_gather_vectors({1, 2, 3});
  });
  // Every PE delivers its 3-word contribution to the one other rank.
  const CommStats stats = total_comm_stats(per_rank);
  EXPECT_EQ(stats.words_sent, 6u);
  EXPECT_EQ(stats.messages_sent, 2u);
}

TEST(PERuntime, CollectivesCountPerDestinationRank) {
  // Pinned counts for a known exchange at p = 4: a collective costs one
  // message plus one payload copy per *destination* rank (3 here), never
  // one per call.
  PERuntime runtime(4);
  const std::vector<CommStats> per_rank = runtime.run([&](PEContext& pe) {
    (void)pe.all_gather(7);  // 1 word to each of 3 destinations
    (void)pe.all_gather_vectors(
        std::vector<std::uint64_t>(static_cast<std::size_t>(pe.rank()), 1));
    std::vector<std::uint64_t> payload;
    if (pe.rank() == 2) payload.assign(5, 9);
    (void)pe.broadcast(payload, 2);  // only the root sends: 5 words x 3
  });
  ASSERT_EQ(per_rank.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const std::uint64_t rank = static_cast<std::uint64_t>(r);
    const std::uint64_t root_msgs = r == 2 ? 3u : 0u;
    const std::uint64_t root_words = r == 2 ? 15u : 0u;
    EXPECT_EQ(per_rank[r].messages_sent, 6u + root_msgs) << "rank " << r;
    EXPECT_EQ(per_rank[r].words_sent, 3u + 3u * rank + root_words)
        << "rank " << r;
  }
}

TEST(PERuntime, SinglePeCollectivesPutNothingOnTheWire) {
  PERuntime runtime(1);
  const std::vector<CommStats> per_rank = runtime.run([&](PEContext& pe) {
    (void)pe.all_gather(1);
    (void)pe.all_gather_vectors({1, 2});
    (void)pe.broadcast({3}, 0);
    EXPECT_EQ(pe.all_reduce_sum(5), 5u);
  });
  EXPECT_EQ(per_rank[0].messages_sent, 0u);
  EXPECT_EQ(per_rank[0].words_sent, 0u);
}

TEST(PERuntime, BroadcastFromEveryRoot) {
  PERuntime runtime(4);
  runtime.run([&](PEContext& pe) {
    for (int root = 0; root < 4; ++root) {
      std::vector<std::uint64_t> payload;
      if (pe.rank() == root) {
        payload = {static_cast<std::uint64_t>(root), 99};
      }
      const auto result = pe.broadcast(payload, root);
      EXPECT_EQ(result,
                (std::vector<std::uint64_t>{static_cast<std::uint64_t>(root),
                                            99}));
    }
  });
}

TEST(PERuntime, RngStreamsDifferAcrossPEsButReplayDeterministically) {
  std::vector<std::uint64_t> first_run(4);
  std::vector<std::uint64_t> second_run(4);
  for (auto* out : {&first_run, &second_run}) {
    PERuntime runtime(4, /*seed=*/99);
    runtime.run([&](PEContext& pe) {
      (*out)[pe.rank()] = pe.rng()();
    });
  }
  EXPECT_EQ(first_run, second_run);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NE(first_run[i], first_run[j]);
    }
  }
}

TEST(PERuntime, CommStatsCountTraffic) {
  PERuntime runtime(3);
  const std::vector<CommStats> per_rank = runtime.run([&](PEContext& pe) {
    if (pe.rank() == 0) {
      pe.send(1, {1, 2, 3});
      pe.send(2, {4});
    }
    pe.barrier();
    if (pe.rank() != 0) (void)pe.try_receive(-1);
  });
  // run() surfaces the counters per rank: all traffic of this program
  // originates at rank 0, but every rank passes the barrier.
  ASSERT_EQ(per_rank.size(), 3u);
  EXPECT_EQ(per_rank[0].messages_sent, 2u);
  EXPECT_EQ(per_rank[0].words_sent, 4u);
  EXPECT_EQ(per_rank[1].messages_sent, 0u);
  EXPECT_EQ(per_rank[2].messages_sent, 0u);
  for (const CommStats& s : per_rank) EXPECT_GE(s.barriers, 1u);

  const CommStats stats = total_comm_stats(per_rank);
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.words_sent, 4u);
  EXPECT_GE(stats.barriers, 1u);
}

// ----------------------------------------------- distributed coloring ----

TEST(DistributedColoring, MatchesSequentialInvariants) {
  const StaticGraph g = grid_graph(40, 10);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    assignment[u] = std::min<BlockID>((u % 40) / 5, 7);
  }
  const Partition p(g, std::move(assignment), 8);
  const QuotientGraph q(g, p);

  const DistributedColoringResult result =
      distributed_color_quotient_edges(q, /*seed=*/5);
  EXPECT_EQ(validate_coloring(q, result.coloring), "");
  EXPECT_LE(result.coloring.num_colors,
            2 * static_cast<int>(q.max_degree()));
  EXPECT_GT(result.comm.messages_sent, 0u);
  EXPECT_GT(result.rounds, 0u);
}

TEST(DistributedColoring, DenseQuotientGraph) {
  // Random 10-way partition of an rgg: the quotient is near-complete.
  Rng graph_rng(3);
  const StaticGraph g = random_geometric_graph(900, 0.08, graph_rng);
  std::vector<BlockID> assignment(g.num_nodes());
  Rng arng(1);
  for (auto& b : assignment) b = static_cast<BlockID>(arng.bounded(10));
  const Partition p(g, std::move(assignment), 10);
  const QuotientGraph q(g, p);
  ASSERT_GT(q.edges().size(), 30u);

  const DistributedColoringResult result =
      distributed_color_quotient_edges(q, /*seed=*/7);
  EXPECT_EQ(validate_coloring(q, result.coloring), "");
}

TEST(DistributedColoring, InRefinerOverloadAgreesWithGreedyForEveryP) {
  // The nested (PESubGroup) variant hosts the k block-PEs on p ranks. For
  // every p it must hand each rank the exact greedy coloring restricted to
  // its hosted blocks' edges: non-hosted edges stay -1, hosted ones carry
  // the greedy color, and num_colors is globally agreed. This is the
  // contract the refiner's executor/partner roles read the schedule from.
  Rng graph_rng(3);
  const StaticGraph g = random_geometric_graph(900, 0.08, graph_rng);
  const BlockID k = 10;
  std::vector<BlockID> assignment(g.num_nodes());
  Rng arng(1);
  for (auto& b : assignment) b = static_cast<BlockID>(arng.bounded(k));
  const Partition p(g, std::move(assignment), k);
  const QuotientGraph q(g, p);
  ASSERT_GT(q.edges().size(), 30u);

  const EdgeColoring greedy = color_quotient_edges(q, Rng(5));

  for (const int num_pes : {1, 2, 3, 5, 8}) {
    PERuntime runtime(num_pes);
    std::vector<RefinerColoringResult> per_rank(
        static_cast<std::size_t>(num_pes));
    runtime.run([&](PEContext& pe) {
      per_rank[pe.rank()] = distributed_color_quotient_edges(q, Rng(5), pe);
    });
    for (int r = 0; r < num_pes; ++r) {
      const EdgeColoring& local = per_rank[r].coloring;
      EXPECT_EQ(local.num_colors, greedy.num_colors)
          << "p=" << num_pes << " rank " << r;
      ASSERT_EQ(local.color_of_edge.size(), q.edges().size());
      for (std::size_t e = 0; e < q.edges().size(); ++e) {
        const QuotientEdge& edge = q.edges()[e];
        const bool hosted =
            BlockRowShard::owner_of_block(edge.a, num_pes) == r ||
            BlockRowShard::owner_of_block(edge.b, num_pes) == r;
        if (hosted) {
          EXPECT_EQ(local.color_of_edge[e], greedy.color_of_edge[e])
              << "p=" << num_pes << " rank " << r << " edge " << e;
        } else {
          EXPECT_EQ(local.color_of_edge[e], -1)
              << "p=" << num_pes << " rank " << r << " edge " << e;
        }
      }
    }
  }
}

TEST(DistributedColoring, EmptyQuotient) {
  const StaticGraph g = grid_graph(4, 1);
  const Partition p(g, {0, 0, 0, 0}, 1);
  const QuotientGraph q(g, p);
  const DistributedColoringResult result =
      distributed_color_quotient_edges(q, 1);
  EXPECT_EQ(result.coloring.num_colors, 0);
}

}  // namespace
}  // namespace kappa
