/// \file pipeline_test.cpp
/// \brief Property tests over the full KaPPa pipeline: the partitions are
/// valid, feasible and reproducible across presets, instance families,
/// block counts and imbalance settings.
#include <gtest/gtest.h>

#include "coarsening/hierarchy.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"

namespace kappa {
namespace {

// ------------------------------------------ contraction stop threshold ----

TEST(StopThreshold, MatchesPaperFormula) {
  // k * max(20, n/(alpha k^2)); alpha = 60.
  // n = 1e6, k = 8: per-PE max(20, 1e6/3840) = 260.4 -> ~2083 global.
  EXPECT_EQ(contraction_stop_threshold(1'000'000, 8, 60.0), 2083u);
  // Small n: the 20-per-PE floor dominates.
  EXPECT_EQ(contraction_stop_threshold(10'000, 8, 60.0), 160u);
  // Never exceeds n.
  EXPECT_EQ(contraction_stop_threshold(100, 64, 60.0), 100u);
}

TEST(Hierarchy, CoarsensBelowThresholdAndConservesWeight) {
  const StaticGraph g = make_instance("rgg14", 3);
  CoarseningOptions options;
  options.contraction_limit = 500;
  Rng rng(1);
  const Hierarchy h = build_hierarchy(g, options, rng);
  EXPECT_GT(h.num_levels(), 3u);
  EXPECT_LE(h.coarsest().num_nodes(), 500u);
  for (std::size_t level = 0; level < h.num_levels(); ++level) {
    EXPECT_EQ(h.graph(level).total_node_weight(), g.total_node_weight());
    EXPECT_EQ(validate_graph(h.graph(level)), "") << "level " << level;
  }
  // Levels shrink monotonically.
  for (std::size_t level = 1; level < h.num_levels(); ++level) {
    EXPECT_LT(h.graph(level).num_nodes(), h.graph(level - 1).num_nodes());
  }
}

TEST(Hierarchy, ParallelMatchingPathProducesSameInvariants) {
  const StaticGraph g = make_instance("rgg14", 3);
  CoarseningOptions options;
  options.contraction_limit = 400;
  options.matching_pes = 8;  // exercises prepartition + gap graph
  Rng rng(2);
  const Hierarchy h = build_hierarchy(g, options, rng);
  EXPECT_LE(h.coarsest().num_nodes(), 400u);
  EXPECT_EQ(h.coarsest().total_node_weight(), g.total_node_weight());
}

// ------------------------------------------------------- full pipeline ----

/// The main property grid: preset x instance x k.
class PipelineProperty
    : public ::testing::TestWithParam<
          std::tuple<Preset, std::string, BlockID>> {};

TEST_P(PipelineProperty, ValidBalancedPartition) {
  const auto& [preset, instance, k] = GetParam();
  const StaticGraph g = make_instance(instance, 11);
  Config config = Config::preset(preset, k);
  config.seed = 5;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);

  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_EQ(result.partition.k(), k);
  EXPECT_TRUE(result.balanced)
      << preset_name(preset) << " " << instance << " k=" << k
      << " balance=" << result.balance;
  for (BlockID b = 0; b < k; ++b) {
    EXPECT_GT(result.partition.block_weight(b), 0)
        << "empty block " << b << " on " << instance;
  }
  EXPECT_EQ(edge_cut(g, result.partition), result.cut);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineProperty,
    ::testing::Combine(
        ::testing::Values(Preset::kMinimal, Preset::kFast, Preset::kStrong),
        ::testing::Values("grid_s", "road_s", "rmat_14", "annulus_m"),
        ::testing::Values(BlockID{4}, BlockID{16})));

TEST(Pipeline, DeterministicUnderFixedSeed) {
  const StaticGraph g = make_instance("delaunay14", 2);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 77;
  const PartitionResult a =
      Partitioner(Context::sequential(config)).partition(g);
  const PartitionResult b =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(a.cut, b.cut);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(a.partition.block(u), b.partition.block(u));
  }
}

TEST(Pipeline, SeedsChangeTheResult) {
  const StaticGraph g = make_instance("delaunay14", 2);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 1;
  const PartitionResult a =
      Partitioner(Context::sequential(config)).partition(g);
  config.seed = 2;
  const PartitionResult b =
      Partitioner(Context::sequential(config)).partition(g);
  bool any_difference = a.cut != b.cut;
  for (NodeID u = 0; u < g.num_nodes() && !any_difference; ++u) {
    any_difference = a.partition.block(u) != b.partition.block(u);
  }
  EXPECT_TRUE(any_difference);
}

/// The Walshaw-benchmark imbalance settings (§6.3).
class EpsilonProperty : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonProperty, RespectsImbalanceBound) {
  const double eps = GetParam();
  const StaticGraph g = make_instance("grid_s", 4);
  Config config = Config::preset(Preset::kFast, 8, eps);
  config.seed = 3;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_TRUE(is_balanced(g, result.partition, eps))
      << "eps=" << eps << " balance=" << result.balance;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonProperty,
                         ::testing::Values(0.01, 0.03, 0.05));

TEST(Pipeline, StrongNotWorseThanMinimalOnAverage) {
  // Table 2's central claim: more work -> better cuts (minimal 2985,
  // fast 2910, strong 2890 geometric mean). Check the trend on a batch.
  double minimal_total = 0;
  double strong_total = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const StaticGraph g = make_instance("delaunay14", seed);
    Config minimal = Config::preset(Preset::kMinimal, 8);
    minimal.seed = seed;
    Config strong = Config::preset(Preset::kStrong, 8);
    strong.seed = seed;
    minimal_total += static_cast<double>(
        Partitioner(Context::sequential(minimal)).partition(g).cut);
    strong_total += static_cast<double>(
        Partitioner(Context::sequential(strong)).partition(g).cut);
  }
  EXPECT_LT(strong_total, minimal_total);
}

TEST(Pipeline, ThreadedRefinementIsValid) {
  const StaticGraph g = make_instance("rgg14", 6);
  Config config = Config::preset(Preset::kFast, 16);
  config.num_threads = 4;
  config.seed = 9;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced);
}

TEST(Pipeline, HandlesDisconnectedGraph) {
  // Two separate grids.
  GraphBuilder builder(200);
  for (NodeID base : {NodeID{0}, NodeID{100}}) {
    for (NodeID y = 0; y < 10; ++y) {
      for (NodeID x = 0; x < 10; ++x) {
        const NodeID u = base + y * 10 + x;
        if (x + 1 < 10) builder.add_edge(u, u + 1);
        if (y + 1 < 10) builder.add_edge(u, u + 10);
      }
    }
  }
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 4);
  config.seed = 1;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced);
}

TEST(Pipeline, HandlesTinyGraphs) {
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 2);
  config.seed = 1;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_LE(result.cut, 2);
}

TEST(Pipeline, WeightedInputGraph) {
  // Node and edge weights from the start (the paper: "even those will be
  // translated into weighted problems in the course of the algorithm").
  GraphBuilder builder(100);
  Rng rng(8);
  for (NodeID u = 0; u < 100; ++u) {
    builder.set_node_weight(u, 1 + static_cast<NodeWeight>(rng.bounded(5)));
  }
  for (NodeID u = 0; u < 99; ++u) {
    builder.add_edge(u, u + 1, 1 + rng.bounded(9));
    if (u + 10 < 100) builder.add_edge(u, u + 10, 1 + rng.bounded(9));
  }
  const StaticGraph g = builder.finalize();
  Config config = Config::preset(Preset::kFast, 4);
  config.seed = 2;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_TRUE(result.balanced);
}

TEST(Pipeline, PhaseTimesSumToTotal) {
  const StaticGraph g = make_instance("grid_s", 1);
  Config config = Config::preset(Preset::kFast, 4);
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_LE(result.coarsening_time + result.initial_time +
                result.refinement_time,
            result.total_time + 1e-6);
  EXPECT_GT(result.hierarchy_levels, 1u);
  EXPECT_GT(result.coarsest_nodes, 0u);
}

}  // namespace
}  // namespace kappa
