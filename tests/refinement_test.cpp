/// \file refinement_test.cpp
/// \brief Tests for two-way FM, band extraction, edge coloring and the
/// pairwise refiner — the paper's §5 machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/quotient_graph.hpp"
#include "graph/validation.hpp"
#include "refinement/band.hpp"
#include "refinement/edge_coloring.hpp"
#include "refinement/kway_refiner.hpp"
#include "refinement/pairwise_refiner.hpp"
#include "refinement/twoway_fm.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

std::vector<NodeID> all_nodes(NodeID n) {
  std::vector<NodeID> nodes(n);
  for (NodeID u = 0; u < n; ++u) nodes[u] = u;
  return nodes;
}

/// Vertical stripes partition of a grid — deliberately poor when the
/// stripes are thin in the wrong direction after perturbation.
Partition striped_partition(const StaticGraph& grid, NodeID nx, BlockID k) {
  std::vector<BlockID> assignment(grid.num_nodes());
  for (NodeID u = 0; u < grid.num_nodes(); ++u) {
    assignment[u] = std::min<BlockID>((u % nx) * k / nx, k - 1);
  }
  return Partition(grid, std::move(assignment), k);
}

// ----------------------------------------------------------- two-way FM ----

TEST(TwoWayFM, RepairsAPerturbedBisection) {
  const StaticGraph g = grid_graph(24, 24);
  // Start from a clean half/half split, then randomly flip 60 nodes.
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 24) < 12 ? 0 : 1;
  Rng rng(4);
  Partition p(g, std::move(assignment), 2);
  for (int i = 0; i < 60; ++i) {
    const NodeID u = static_cast<NodeID>(rng.bounded(g.num_nodes()));
    const BlockID other = 1 - p.block(u);
    p.move(u, other, g.node_weight(u));
  }
  const EdgeWeight before = edge_cut(g, p);

  TwoWayFMOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.03);
  options.patience_alpha = 0.25;
  EdgeWeight total_gain = 0;
  for (int round = 0; round < 8; ++round) {
    Rng fm_rng = rng.fork(round);
    const TwoWayFMResult result =
        twoway_fm(g, p, 0, 1, all_nodes(g.num_nodes()), options, fm_rng);
    total_gain += result.cut_gain;
    if (result.moved_nodes == 0) break;
  }
  const EdgeWeight after = edge_cut(g, p);
  EXPECT_EQ(before - after, total_gain);
  EXPECT_LT(after, before);
  // The optimum straight cut costs 24; FM should get close again.
  EXPECT_LE(after, 40);
  EXPECT_TRUE(is_balanced(g, p, 0.03));
}

/// Lexicographic no-worsening holds for every queue selection strategy on
/// random starting partitions.
class FMStrategyProperty : public ::testing::TestWithParam<QueueSelection> {};

TEST_P(FMStrategyProperty, NeverWorsensLexicographicObjective) {
  const QueueSelection strategy = GetParam();
  Rng graph_rng(6);
  const StaticGraph g = random_geometric_graph(700, 0.07, graph_rng);
  const NodeWeight bound = max_block_weight_bound(g, 2, 0.03);

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    std::vector<BlockID> assignment(g.num_nodes());
    for (auto& b : assignment) b = static_cast<BlockID>(rng.bounded(2));
    Partition p(g, std::move(assignment), 2);

    const EdgeWeight cut_before = edge_cut(g, p);
    const NodeWeight imbalance_before = std::max<NodeWeight>(
        0, std::max(p.block_weight(0) - bound, p.block_weight(1) - bound));

    TwoWayFMOptions options;
    options.queue_selection = strategy;
    options.max_block_weight = bound;
    options.patience_alpha = 0.1;
    Rng fm_rng(seed + 50);
    const TwoWayFMResult result =
        twoway_fm(g, p, 0, 1, all_nodes(g.num_nodes()), options, fm_rng);

    const EdgeWeight cut_after = edge_cut(g, p);
    const NodeWeight imbalance_after = std::max<NodeWeight>(
        0, std::max(p.block_weight(0) - bound, p.block_weight(1) - bound));

    // Lexicographic (imbalance, cut) never worse.
    EXPECT_TRUE(imbalance_after < imbalance_before ||
                (imbalance_after == imbalance_before &&
                 cut_after <= cut_before))
        << queue_selection_name(strategy) << " seed " << seed;
    // Reported gains match the measured deltas.
    EXPECT_EQ(result.cut_gain, cut_before - cut_after);
    EXPECT_EQ(result.imbalance_gain, imbalance_before - imbalance_after);
    EXPECT_EQ(validate_partition(g, p), "");
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FMStrategyProperty,
                         ::testing::Values(QueueSelection::kTopGain,
                                           QueueSelection::kMaxLoad,
                                           QueueSelection::kAlternate,
                                           QueueSelection::kTopGainMaxLoad));

TEST(TwoWayFM, ReducesOverloadFromImbalancedStart) {
  const StaticGraph g = grid_graph(20, 20);
  // 90/10 split: heavily overloaded block 0.
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 20) < 18 ? 0 : 1;
  Partition p(g, std::move(assignment), 2);
  const NodeWeight bound = max_block_weight_bound(g, 2, 0.03);
  ASSERT_GT(p.block_weight(0), bound);

  TwoWayFMOptions options;
  options.max_block_weight = bound;
  options.patience_alpha = 0.5;
  Rng rng(3);
  NodeWeight overload = p.block_weight(0) - bound;
  for (int round = 0; round < 12 && overload > 0; ++round) {
    Rng fm_rng = rng.fork(round);
    (void)twoway_fm(g, p, 0, 1, all_nodes(g.num_nodes()), options, fm_rng);
    overload = std::max<NodeWeight>(
        0, std::max(p.block_weight(0) - bound, p.block_weight(1) - bound));
  }
  EXPECT_EQ(overload, 0) << "FM failed to rebalance";
}

TEST(TwoWayFM, RespectsEligibilityBand) {
  const StaticGraph g = grid_graph(16, 16);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 16) < 8 ? 0 : 1;
  Partition p(g, std::move(assignment), 2);
  const Partition before = p;

  // Eligible set: only the two columns at the boundary.
  std::vector<NodeID> band;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    const NodeID col = u % 16;
    if (col == 7 || col == 8) band.push_back(u);
  }
  TwoWayFMOptions options;
  options.max_block_weight = max_block_weight_bound(g, 2, 0.03);
  Rng rng(5);
  (void)twoway_fm(g, p, 0, 1, band, options, rng);
  // Nodes outside the band never move.
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    const NodeID col = u % 16;
    if (col != 7 && col != 8) {
      EXPECT_EQ(p.block(u), before.block(u)) << "node " << u;
    }
  }
}

// ------------------------------------------------------------------ band ----

TEST(Band, DepthOneIsExactlyTheBoundary) {
  const StaticGraph g = grid_graph(10, 10);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 10) < 5 ? 0 : 1;
  Partition p(g, std::move(assignment), 2);
  const auto band = boundary_band(g, p, 0, 1, 1);
  // Columns 4 and 5: 20 nodes.
  EXPECT_EQ(band.size(), 20u);
  for (const NodeID u : band) {
    const NodeID col = u % 10;
    EXPECT_TRUE(col == 4 || col == 5);
  }
}

TEST(Band, DepthGrowsByOneColumnPerLevel) {
  const StaticGraph g = grid_graph(10, 10);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 10) < 5 ? 0 : 1;
  Partition p(g, std::move(assignment), 2);
  EXPECT_EQ(boundary_band(g, p, 0, 1, 2).size(), 40u);
  EXPECT_EQ(boundary_band(g, p, 0, 1, 3).size(), 60u);
  EXPECT_EQ(boundary_band(g, p, 0, 1, 5).size(), 100u);  // whole graph
}

TEST(Band, RestrictedToThePairsBlocks) {
  const StaticGraph g = grid_graph(9, 9);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 9) / 3;
  Partition p(g, std::move(assignment), 3);
  const auto band = boundary_band(g, p, 0, 1, 4);
  for (const NodeID u : band) {
    EXPECT_NE(p.block(u), 2u);
  }
}

// --------------------------------------------------------- edge coloring ----

TEST(EdgeColoring, ValidOnStripedQuotient) {
  const StaticGraph g = grid_graph(32, 8);
  const Partition p = striped_partition(g, 32, 8);
  const QuotientGraph q(g, p);
  ASSERT_EQ(q.edges().size(), 7u);  // a path of blocks
  Rng rng(2);
  const EdgeColoring coloring = color_quotient_edges(q, rng);
  EXPECT_EQ(validate_coloring(q, coloring), "");
  // A path needs only 2 colors; the protocol guarantees <= 2*opt.
  EXPECT_LE(coloring.num_colors, 4);
}

TEST(EdgeColoring, ColorClassesAreMatchings) {
  Rng graph_rng(7);
  const StaticGraph g = random_geometric_graph(1200, 0.06, graph_rng);
  // Random 12-way partition gives a dense quotient graph.
  std::vector<BlockID> assignment(g.num_nodes());
  Rng arng(3);
  for (auto& b : assignment) b = static_cast<BlockID>(arng.bounded(12));
  const Partition p(g, std::move(assignment), 12);
  const QuotientGraph q(g, p);
  Rng rng(5);
  const EdgeColoring coloring = color_quotient_edges(q, rng);
  EXPECT_EQ(validate_coloring(q, coloring), "");
  for (int c = 0; c < coloring.num_colors; ++c) {
    std::set<BlockID> blocks;
    for (const std::size_t e : coloring.color_class(c)) {
      EXPECT_TRUE(blocks.insert(q.edges()[e].a).second);
      EXPECT_TRUE(blocks.insert(q.edges()[e].b).second);
    }
  }
  // The theoretical bound: at most twice the optimum <= 2 * maxdeg colors
  // (an edge coloring needs >= maxdeg).
  EXPECT_LE(coloring.num_colors, 2 * static_cast<int>(q.max_degree()));
}

TEST(EdgeColoring, SingleEdgeTerminates) {
  const StaticGraph g = grid_graph(4, 2);
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = (u % 4) < 2 ? 0 : 1;
  const Partition p(g, std::move(assignment), 2);
  const QuotientGraph q(g, p);
  ASSERT_EQ(q.edges().size(), 1u);
  Rng rng(1);
  const EdgeColoring coloring = color_quotient_edges(q, rng);
  EXPECT_EQ(coloring.num_colors, 1);
  EXPECT_EQ(coloring.color_of_edge[0], 0);
}

// ------------------------------------------------------ pairwise refiner ----

TEST(PairwiseRefiner, ImprovesStripedGridPartition) {
  const StaticGraph g = grid_graph(32, 32);
  Partition p = striped_partition(g, 32, 4);
  const EdgeWeight before = edge_cut(g, p);

  PairwiseRefinerOptions options;
  options.fm.max_block_weight = max_block_weight_bound(g, 4, 0.03);
  options.fm.patience_alpha = 0.2;
  options.bfs_depth = 5;
  options.local_iterations = 3;
  options.max_global_iterations = 10;
  Rng rng(8);
  const PairwiseRefineReport report = pairwise_refine(g, p, options, rng);

  const EdgeWeight after = edge_cut(g, p);
  EXPECT_EQ(before - after, report.total_cut_gain);
  EXPECT_LE(after, before);
  EXPECT_EQ(validate_partition(g, p), "");
  EXPECT_TRUE(is_balanced(g, p, 0.03));
}

TEST(PairwiseRefiner, ThreadedMatchesInvariants) {
  Rng graph_rng(9);
  const StaticGraph g = random_geometric_graph(2500, 0.04, graph_rng);
  std::vector<BlockID> assignment(g.num_nodes());
  Rng arng(2);
  for (auto& b : assignment) b = static_cast<BlockID>(arng.bounded(8));
  Partition p(g, std::move(assignment), 8);
  const EdgeWeight before = edge_cut(g, p);

  PairwiseRefinerOptions options;
  options.fm.max_block_weight = max_block_weight_bound(g, 8, 0.03);
  options.fm.patience_alpha = 0.2;
  options.num_threads = 4;  // concurrent independent pairs
  options.max_global_iterations = 6;
  Rng rng(3);
  const PairwiseRefineReport report = pairwise_refine(g, p, options, rng);

  EXPECT_EQ(validate_partition(g, p), "");
  EXPECT_EQ(before - edge_cut(g, p), report.total_cut_gain);
  EXPECT_GT(report.total_cut_gain, 0);
}

TEST(PairwiseRefiner, DuplicateSearchNotWorseThanSingle) {
  const StaticGraph g = grid_graph(24, 24);
  Partition p1 = striped_partition(g, 24, 4);
  Partition p2 = p1;

  PairwiseRefinerOptions options;
  options.fm.max_block_weight = max_block_weight_bound(g, 4, 0.03);
  options.max_global_iterations = 5;
  Rng rng1(11);
  options.duplicate_search = false;
  pairwise_refine(g, p1, options, rng1);
  Rng rng2(11);
  options.duplicate_search = true;
  pairwise_refine(g, p2, options, rng2);

  EXPECT_EQ(validate_partition(g, p2), "");
  // Both are valid improvements; duplicate search explores two seeds per
  // pair so it should not end substantially worse.
  EXPECT_LE(edge_cut(g, p2), edge_cut(g, p1) * 12 / 10);
}

// --------------------------------------------------------- k-way refiner ----

TEST(KWayRefiner, ImprovesRandomPartition) {
  const StaticGraph g = grid_graph(20, 20);
  std::vector<BlockID> assignment(g.num_nodes());
  Rng arng(4);
  for (auto& b : assignment) b = static_cast<BlockID>(arng.bounded(4));
  Partition p(g, std::move(assignment), 4);
  const EdgeWeight before = edge_cut(g, p);

  KWayRefinerOptions options;
  options.max_block_weight = max_block_weight_bound(g, 4, 0.05);
  options.passes = 6;
  Rng rng(5);
  const EdgeWeight gain = kway_refine(g, p, options, rng);
  EXPECT_GT(gain, 0);
  EXPECT_EQ(edge_cut(g, p), before - gain);
  EXPECT_EQ(validate_partition(g, p), "");
}

TEST(KWayRefiner, RespectsWeightBound) {
  const StaticGraph g = grid_graph(16, 16);
  const Partition start = striped_partition(g, 16, 4);
  Partition p = start;
  KWayRefinerOptions options;
  options.max_block_weight = max_block_weight_bound(g, 4, 0.03);
  options.passes = 4;
  Rng rng(6);
  kway_refine(g, p, options, rng);
  for (BlockID b = 0; b < 4; ++b) {
    EXPECT_LE(p.block_weight(b), options.max_block_weight);
  }
}

}  // namespace
}  // namespace kappa
