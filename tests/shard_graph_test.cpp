/// \file shard_graph_test.cpp
/// \brief Tests for the per-PE data sharding: the ghost-layer ShardGraph
/// of SPMD matching, the §5.2 BlockRowShard of SPMD refinement, the
/// distributed quotient construction, and the wire-format packing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/quotient_graph.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/dist_partition.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/shard_graph.hpp"
#include "parallel/spmd_phases.hpp"
#include "parallel/wire_format.hpp"
#include "util/random.hpp"

namespace kappa {
namespace {

// ------------------------------------------------------------ wire format ----

TEST(WireFormat, PacksNearInvalidIdsWithoutTruncation) {
  // Regression for the silent-truncation hazard the static_asserts pin:
  // ids near kInvalidNode must round-trip through the one-word packing.
  const NodeID hi = kInvalidNode - 1;
  const NodeID lo = 7;
  const auto [first, second] = unpack_pair(pack_pair(hi, lo));
  EXPECT_EQ(first, hi);
  EXPECT_EQ(second, lo);
  const auto [f2, s2] = unpack_pair(pack_pair(kInvalidNode, hi));
  EXPECT_EQ(f2, kInvalidNode);
  EXPECT_EQ(s2, hi);
}

TEST(WireFormat, EdgeKeyIsCanonicalAndInjective) {
  const NodeID a = kInvalidNode - 2;
  const NodeID b = 3;
  EXPECT_EQ(edge_key(a, b), edge_key(b, a));
  EXPECT_NE(edge_key(a, b), edge_key(a, b + 1));
  EXPECT_NE(edge_key(a, b), edge_key(a - 1, b));
  // The canonical (lo, hi) layout survives unpacking.
  const auto [lo, hi] = unpack_pair(edge_key(a, b));
  EXPECT_EQ(lo, b);
  EXPECT_EQ(hi, a);
}

// ------------------------------------------------------------- ShardGraph ----

TEST(ShardGraph, ResidentLayerIsOwnedPlusOneHopHalo) {
  Rng rng(7);
  const StaticGraph g = random_geometric_graph(2000, rng);
  const BlockID num_shards = 8;
  const int p = 4;
  PERuntime runtime(p, 1);
  std::vector<std::uint64_t> owned_count(p, 0);
  runtime.run([&](PEContext& pe) {
    const DistGraph dist(g, num_shards, pe.rank(), p);
    const ShardGraph shard(g, dist, pe);
    owned_count[pe.rank()] = shard.num_owned();

    // Owned set: exactly the union of this rank's shards.
    std::set<NodeID> owned;
    for (const BlockID s : dist.shards_of_rank(pe.rank(), p)) {
      for (const NodeID u : dist.shard(s).nodes) owned.insert(u);
    }
    ASSERT_EQ(owned.size(), shard.num_owned());

    // Ghost layer: exactly the one-hop out-neighborhood of the owned set.
    std::set<NodeID> expected_ghosts;
    for (const NodeID u : owned) {
      for (const NodeID v : g.neighbors(u)) {
        if (owned.count(v) == 0) expected_ghosts.insert(v);
      }
    }
    ASSERT_EQ(expected_ghosts.size(), shard.num_ghost());
    EXPECT_LT(shard.footprint().resident_nodes(), g.num_nodes());

    // Owned rows reproduce the replica rows (as multisets — the local
    // CSR orders core arcs before ghost arcs); ghost weights and
    // weighted degrees came over the wire and must match the replica.
    for (NodeID local = 0; local < shard.num_local(); ++local) {
      const NodeID global = shard.global_of(local);
      EXPECT_EQ(shard.csr().node_weight(local), g.node_weight(global));
      EXPECT_EQ(shard.weighted_degrees()[local], g.weighted_degree(global));
      EXPECT_EQ(shard.local_of(global), local);
      if (!shard.is_owned(local)) continue;
      std::multiset<std::pair<NodeID, EdgeWeight>> resident_arcs;
      for (EdgeID e = shard.csr().first_arc(local);
           e < shard.csr().last_arc(local); ++e) {
        resident_arcs.emplace(shard.global_of(shard.csr().arc_target(e)),
                              shard.csr().arc_weight(e));
      }
      std::multiset<std::pair<NodeID, EdgeWeight>> replica_arcs;
      for (EdgeID e = g.first_arc(global); e < g.last_arc(global); ++e) {
        replica_arcs.emplace(g.arc_target(e), g.arc_weight(e));
      }
      EXPECT_EQ(resident_arcs, replica_arcs) << "node " << global;
    }
  });
  // The owned sets partition the nodes.
  std::uint64_t total = 0;
  for (const std::uint64_t c : owned_count) total += c;
  EXPECT_EQ(total, g.num_nodes());
}

TEST(ShardGraph, SingleRankOwnsEverythingWithoutGhosts) {
  const StaticGraph g = grid_graph(20, 20);
  PERuntime runtime(1, 1);
  runtime.run([&](PEContext& pe) {
    const DistGraph dist(g, 4, pe.rank(), 1);
    const ShardGraph shard(g, dist, pe);
    EXPECT_EQ(shard.num_owned(), g.num_nodes());
    EXPECT_EQ(shard.num_ghost(), 0u);
    EXPECT_EQ(shard.csr().num_arcs(), g.num_arcs());
  });
}

TEST(ShardGraph, GhostRefreshIsCountedInCommStats) {
  Rng rng(3);
  const StaticGraph g = random_geometric_graph(1500, rng);
  PERuntime runtime(2, 1);
  const std::vector<CommStats> per_rank = runtime.run([&](PEContext& pe) {
    const DistGraph dist(g, 8, pe.rank(), 2);
    const ShardGraph shard(g, dist, pe);
    EXPECT_GT(shard.num_ghost(), 0u);
  });
  for (const CommStats& s : per_rank) {
    EXPECT_GT(s.messages_sent, 0u);
    EXPECT_GT(s.words_sent, 0u);
  }
}

// -------------------------------------------- rank-filtered DistGraph ----

TEST(DistGraph, RankFilteredBuildMaterializesOwnShardsOnly) {
  const StaticGraph g = grid_graph(30, 30);
  const DistGraph full(g, 6);
  const int p = 2;
  for (int rank = 0; rank < p; ++rank) {
    const DistGraph filtered(g, 6, rank, p);
    EXPECT_EQ(filtered.node_to_shard(), full.node_to_shard());
    for (BlockID s = 0; s < 6; ++s) {
      if (DistGraph::owner_of_shard(s, p) == rank) {
        EXPECT_EQ(filtered.shard(s).nodes, full.shard(s).nodes);
        EXPECT_EQ(filtered.shard(s).cross_arcs.size(),
                  full.shard(s).cross_arcs.size());
        EXPECT_EQ(filtered.shard(s).boundary_nodes,
                  full.shard(s).boundary_nodes);
      } else {
        EXPECT_TRUE(filtered.shard(s).nodes.empty());
        EXPECT_TRUE(filtered.shard(s).cross_arcs.empty());
      }
    }
  }
}

// ------------------------------------------- distributed quotient graph ----

TEST(BlockRowShard, GatherQuotientReproducesSequentialConstruction) {
  const StaticGraph g = make_instance("rgg14", 4);
  Config config = Config::preset(Preset::kMinimal, 5);
  config.seed = 2;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(g);
  const Partition& partition = result.partition;
  const QuotientGraph sequential(g, partition);
  ASSERT_GT(sequential.edges().size(), 3u);

  for (const int p : {1, 2, 3}) {
    PERuntime runtime(p, 1);
    runtime.run([&](PEContext& pe) {
      const BlockRowShard store(g, partition.assignment(), partition.k(),
                                pe.rank(), p);
      // The sharded partition state in its fully-cached oracle form: the
      // quotient construction reads target blocks from it exactly as the
      // pipeline reads the ghost-block cache.
      const DistPartition replica = DistPartition::from_replica(partition);
      const QuotientGraph merged =
          gather_quotient(store, replica, partition.k(), pe);
      // Bit-for-bit: same edge order, same weights, same boundaries.
      ASSERT_EQ(merged.edges().size(), sequential.edges().size())
          << "p=" << p;
      for (std::size_t i = 0; i < merged.edges().size(); ++i) {
        const QuotientEdge& m = merged.edges()[i];
        const QuotientEdge& s = sequential.edges()[i];
        EXPECT_EQ(m.a, s.a) << "p=" << p << " edge " << i;
        EXPECT_EQ(m.b, s.b) << "p=" << p << " edge " << i;
        EXPECT_EQ(m.cut_weight, s.cut_weight) << "p=" << p << " edge " << i;
        ASSERT_EQ(m.boundary, s.boundary) << "p=" << p << " edge " << i;
      }
      for (BlockID b = 0; b < partition.k(); ++b) {
        EXPECT_EQ(merged.incident(b), sequential.incident(b));
      }
    });
  }
}

// ------------------------------------------------------- BlockRowShard ----

TEST(BlockRowShard, RowsMigrateBetweenStoresOnBlockMoves) {
  const StaticGraph g = grid_graph(8, 8);
  const BlockID k = 4;
  const int p = 2;
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = u % k;

  BlockRowShard store0(g, assignment, k, 0, p);  // owns blocks 0, 2
  BlockRowShard store1(g, assignment, k, 1, p);  // owns blocks 1, 3
  const std::uint64_t nodes0 = store0.footprint().owned_nodes;
  const std::uint64_t nodes1 = store1.footprint().owned_nodes;
  EXPECT_EQ(nodes0 + nodes1, g.num_nodes());

  // Node 4 (block 0, rank 0) moves to block 1 (rank 1): the departing
  // row is returned by the old owner and taken in by the new one.
  const NodeID u = 4;
  ASSERT_EQ(assignment[u], 0u);
  const GraphRow shipped = store0.apply_move(u, 0, 1, nullptr);
  ASSERT_EQ(shipped.targets.size(), g.degree(u));
  store1.apply_move(u, 0, 1, &shipped);

  EXPECT_EQ(store0.footprint().owned_nodes, nodes0 - 1);
  EXPECT_EQ(store1.footprint().owned_nodes, nodes1 + 1);
  EXPECT_TRUE(std::binary_search(store1.members(1).begin(),
                                 store1.members(1).end(), u));
  EXPECT_FALSE(std::binary_search(store0.members(0).begin(),
                                  store0.members(0).end(), u));

  // The migrated row answers exactly like the replica at its new home.
  const GraphRow row = store1.row(u);
  EXPECT_EQ(row.weight, g.node_weight(u));
  std::vector<NodeID> targets(g.neighbors(u).begin(), g.neighbors(u).end());
  EXPECT_EQ(row.targets, targets);

  // Moving back home un-tombstones the core row, no shipping needed.
  const GraphRow shipped_back = store1.apply_move(u, 1, 0, nullptr);
  ASSERT_EQ(shipped_back.targets.size(), g.degree(u));
  store0.apply_move(u, 1, 0, &shipped_back);
  EXPECT_EQ(store0.footprint().owned_nodes, nodes0);
  EXPECT_EQ(store0.row(u).targets, targets);
}

TEST(BlockRowShard, RowSetConstructorMatchesReplicaExtraction) {
  // The replica-free construction path (rows pre-distributed over
  // channels) must assemble the identical store the replica extraction
  // produces: same members, same row content.
  const StaticGraph g = make_instance("grid_s", 3);
  const BlockID k = 6;
  const int p = 2;
  const int rank = 1;
  std::vector<BlockID> assignment(g.num_nodes());
  for (NodeID u = 0; u < g.num_nodes(); ++u) assignment[u] = u % k;

  const BlockRowShard from_replica(g, assignment, k, rank, p);

  std::vector<NodeID> mine;
  std::vector<BlockID> row_blocks;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    if (BlockRowShard::owner_of_block(assignment[u], p) == rank) {
      mine.push_back(u);
      row_blocks.push_back(assignment[u]);
    }
  }
  const BlockRowShard from_rows(extract_rows(g, mine), row_blocks, k, rank, p);

  for (BlockID b = 0; b < k; ++b) {
    ASSERT_EQ(from_rows.members(b), from_replica.members(b)) << "block " << b;
  }
  for (const NodeID u : mine) {
    const GraphRow a = from_replica.row(u);
    const GraphRow b = from_rows.row(u);
    EXPECT_EQ(a.weight, b.weight);
    ASSERT_EQ(a.targets, b.targets) << "node " << u;
    ASSERT_EQ(a.weights, b.weights) << "node " << u;
  }
  EXPECT_EQ(from_rows.footprint().owned_nodes,
            from_replica.footprint().owned_nodes);
  EXPECT_EQ(from_rows.footprint().arcs, from_replica.footprint().arcs);
}

// ------------------------------------------------------- DistHierarchy ----

TEST(DistHierarchy, LevelsAreShardedNotReplicated) {
  // The tentpole acceptance criterion: every coarsening level exists only
  // as per-PE shards. Per level, the owned sets partition the level's
  // nodes and each rank's resident share (owned + one-hop halo) stays
  // strictly below n_level for p >= 2.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;

  for (const int p : {2, 4}) {
    PERuntime runtime(p, config.seed);
    std::vector<std::vector<ShardFootprint>> per_rank(p);
    std::vector<std::vector<NodeID>> level_nodes(p);
    runtime.run([&](PEContext& pe) {
      SpmdCoarsener coarsener(config, pe);
      const DistHierarchy hierarchy = coarsener.coarsen(g);
      for (std::size_t l = 0; l < hierarchy.num_levels(); ++l) {
        per_rank[pe.rank()].push_back(hierarchy.level(l).footprint());
        level_nodes[pe.rank()].push_back(hierarchy.level_nodes(l));
      }
    });
    ASSERT_GE(level_nodes[0].size(), 3u) << "p=" << p;
    for (int rank = 1; rank < p; ++rank) {
      ASSERT_EQ(level_nodes[rank], level_nodes[0]) << "p=" << p;
    }
    for (std::size_t l = 0; l < level_nodes[0].size(); ++l) {
      const NodeID n_level = level_nodes[0][l];
      std::uint64_t total_owned = 0;
      for (int rank = 0; rank < p; ++rank) {
        const ShardFootprint& fp = per_rank[rank][l];
        total_owned += fp.owned_nodes;
        // The per-level resident-memory criterion: sharded, not
        // replicated. (Tiny coarse levels can be halo-dominated, so the
        // strict bound is asserted where sharding can pay off at all.)
        if (n_level >= 512) {
          EXPECT_LT(fp.resident_nodes(), n_level)
              << "p=" << p << " level " << l << " rank " << rank;
          EXPECT_LE(fp.owned_nodes, 2u * n_level / p)
              << "p=" << p << " level " << l << " rank " << rank;
        }
      }
      // The owned sets partition the level exactly.
      EXPECT_EQ(total_owned, n_level) << "p=" << p << " level " << l;
    }
  }
}

TEST(DistHierarchy, GatheredCoarsestIsConsistentAcrossPeCounts) {
  // The one permitted gather: the coarsest graph must be identical on
  // every rank and for every p, symmetric, and weight-preserving (its
  // total node weight is the input's — contraction only merges).
  const StaticGraph g = make_instance("delaunay14", 7);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 3;

  std::vector<EdgeID> arcs_seen;
  std::vector<NodeID> nodes_seen;
  for (const int p : {1, 3, 4}) {
    PERuntime runtime(p, config.seed);
    std::vector<NodeID> nodes(p, 0);
    std::vector<EdgeID> arcs(p, 0);
    runtime.run([&](PEContext& pe) {
      SpmdCoarsener coarsener(config, pe);
      DistHierarchy hierarchy = coarsener.coarsen(g);
      const StaticGraph& coarsest = hierarchy.coarsest();
      nodes[pe.rank()] = coarsest.num_nodes();
      arcs[pe.rank()] = coarsest.num_arcs();
      EXPECT_EQ(coarsest.total_node_weight(), g.total_node_weight());
      // Symmetry: every arc has its mirror with equal weight.
      for (NodeID u = 0; u < coarsest.num_nodes(); ++u) {
        for (EdgeID e = coarsest.first_arc(u); e < coarsest.last_arc(u);
             ++e) {
          const NodeID v = coarsest.arc_target(e);
          bool mirrored = false;
          for (EdgeID f = coarsest.first_arc(v); f < coarsest.last_arc(v);
               ++f) {
            if (coarsest.arc_target(f) == u &&
                coarsest.arc_weight(f) == coarsest.arc_weight(e)) {
              mirrored = true;
              break;
            }
          }
          ASSERT_TRUE(mirrored) << "arc " << u << "->" << v << " p=" << p;
        }
      }
    });
    for (int rank = 1; rank < p; ++rank) {
      EXPECT_EQ(nodes[rank], nodes[0]);
      EXPECT_EQ(arcs[rank], arcs[0]);
    }
    nodes_seen.push_back(nodes[0]);
    arcs_seen.push_back(arcs[0]);
  }
  for (std::size_t i = 1; i < nodes_seen.size(); ++i) {
    EXPECT_EQ(nodes_seen[i], nodes_seen[0]);
    EXPECT_EQ(arcs_seen[i], arcs_seen[0]);
  }
}

}  // namespace
}  // namespace kappa
