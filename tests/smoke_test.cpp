/// \file smoke_test.cpp
/// \brief End-to-end smoke tests: the full KaPPa pipeline on small graphs.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "graph/graph_builder.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"

namespace kappa {
namespace {

/// A 2D grid graph is the simplest mesh-like instance.
StaticGraph grid_graph(NodeID nx, NodeID ny) {
  GraphBuilder builder(nx * ny);
  for (NodeID y = 0; y < ny; ++y) {
    for (NodeID x = 0; x < nx; ++x) {
      const NodeID u = y * nx + x;
      if (x + 1 < nx) builder.add_edge(u, u + 1);
      if (y + 1 < ny) builder.add_edge(u, u + nx);
      builder.set_coordinate(u, {static_cast<double>(x),
                                 static_cast<double>(y)});
    }
  }
  return builder.finalize();
}

TEST(Smoke, FastPresetPartitionsGrid) {
  const StaticGraph graph = grid_graph(32, 32);
  ASSERT_EQ(validate_graph(graph), "");

  Config config = Config::preset(Preset::kFast, /*k=*/4);
  config.seed = 42;
  const PartitionResult result =
      Partitioner(Context::sequential(config)).partition(graph);

  EXPECT_EQ(validate_partition(graph, result.partition), "");
  EXPECT_TRUE(result.balanced) << "balance = " << result.balance;
  EXPECT_GT(result.cut, 0);
  // A 32x32 grid cut into 4 quadrants costs 64; accept anything within 2x.
  EXPECT_LE(result.cut, 128);
}

TEST(Smoke, AllPresetsProduceValidPartitions) {
  const StaticGraph graph = grid_graph(24, 24);
  for (const Preset preset :
       {Preset::kMinimal, Preset::kFast, Preset::kStrong}) {
    Config config = Config::preset(preset, /*k=*/8);
    config.seed = 7;
    const PartitionResult result =
        Partitioner(Context::sequential(config)).partition(graph);
    EXPECT_EQ(validate_partition(graph, result.partition), "")
        << preset_name(preset);
    EXPECT_TRUE(result.balanced) << preset_name(preset);
  }
}

}  // namespace
}  // namespace kappa
