/// \file spmd_pipeline_test.cpp
/// \brief Tests for the SPMD end-to-end pipeline: the graph sharding, the
/// parallel entry point's validity and quality, its p-invariance (fixed
/// seed => identical partition for every PE count) and the surfaced
/// communication statistics.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/validation.hpp"
#include "parallel/dist_graph.hpp"
#include "parallel/pe_runtime.hpp"

namespace kappa {
namespace {

// ------------------------------------------------------------ dist graph ----

TEST(DistGraph, ShardsPartitionTheNodes) {
  Rng rng(7);
  const StaticGraph g = random_geometric_graph(2000, rng);
  const DistGraph dist(g, 8);
  ASSERT_EQ(dist.num_shards(), 8u);

  std::vector<int> seen(g.num_nodes(), 0);
  for (BlockID s = 0; s < dist.num_shards(); ++s) {
    for (const NodeID u : dist.shard(s).nodes) {
      EXPECT_EQ(dist.shard_of(u), s);
      ++seen[u];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(DistGraph, CrossArcsAreExactlyTheShardBoundary) {
  const StaticGraph g = grid_graph(30, 30);
  const DistGraph dist(g, 4);

  std::size_t cross = 0;
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    for (EdgeID e = g.first_arc(u); e < g.last_arc(u); ++e) {
      if (dist.shard_of(u) != dist.shard_of(g.arc_target(e))) ++cross;
    }
  }
  std::size_t listed = 0;
  for (BlockID s = 0; s < dist.num_shards(); ++s) {
    for (const CrossShardArc& arc : dist.shard(s).cross_arcs) {
      EXPECT_EQ(dist.shard_of(arc.u), s);
      EXPECT_NE(dist.shard_of(arc.v), s);
    }
    listed += dist.shard(s).cross_arcs.size();
    for (const NodeID u : dist.shard(s).boundary_nodes) {
      EXPECT_EQ(dist.shard_of(u), s);
    }
  }
  EXPECT_EQ(listed, cross);
}

TEST(DistGraph, RoundRobinOwnershipCoversAllShards) {
  const StaticGraph g = grid_graph(20, 20);
  const DistGraph dist(g, 6);
  const int p = 4;
  std::vector<int> owner_count(p, 0);
  for (BlockID s = 0; s < dist.num_shards(); ++s) {
    const int owner = DistGraph::owner_of_shard(s, p);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, p);
    ++owner_count[owner];
  }
  int total = 0;
  for (int rank = 0; rank < p; ++rank) {
    const std::vector<BlockID> shards = dist.shards_of_rank(rank, p);
    EXPECT_EQ(static_cast<int>(shards.size()), owner_count[rank]);
    for (const BlockID s : shards) {
      EXPECT_EQ(DistGraph::owner_of_shard(s, p), rank);
    }
    total += static_cast<int>(shards.size());
  }
  EXPECT_EQ(total, static_cast<int>(dist.num_shards()));
}

// -------------------------------------------------------- SPMD pipeline ----

TEST(SpmdPipeline, ValidBalancedPartition) {
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;
  PERuntime runtime(2, config.seed);
  const PartitionResult result =
      Partitioner(Context::spmd(config, runtime)).partition(g);

  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_EQ(result.partition.k(), 8u);
  EXPECT_TRUE(result.balanced) << "balance=" << result.balance;
  EXPECT_EQ(edge_cut(g, result.partition), result.cut);
  for (BlockID b = 0; b < 8; ++b) {
    EXPECT_GT(result.partition.block_weight(b), 0) << "empty block " << b;
  }
}

/// The headline determinism property: with a fixed seed the partition is a
/// function of the input alone — the runtime size p only changes wall time
/// and communication counters. Swept over the generator families.
class SpmdDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(SpmdDeterminism, SameCutAndPartitionForEveryPeCount) {
  const StaticGraph g = make_instance(GetParam(), 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  PartitionResult reference;
  for (const int p : {1, 2, 4}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    if (p == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.cut, reference.cut) << GetParam() << " p=" << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(result.partition.block(u), reference.partition.block(u))
          << GetParam() << " p=" << p << " node " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, SpmdDeterminism,
                         ::testing::Values("rgg14", "delaunay14", "road_s",
                                           "annulus_m"));

TEST(SpmdPipeline, BitIdenticalForP1Through9) {
  // The distributed-hierarchy acceptance criterion: bit-identity and
  // p-invariance over the full runtime-size range, including ragged p
  // (3, 5, 6, 7 do not divide the shard count) and p > k (9 PEs for
  // k = 8 leaves rank 8 without shards or blocks — it must idle in
  // lockstep).
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  PartitionResult reference;
  for (int p = 1; p <= 9; ++p) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    EXPECT_EQ(validate_partition(g, result.partition), "");
    if (p == 1) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.cut, reference.cut) << "p=" << p;
    EXPECT_EQ(result.hierarchy_levels, reference.hierarchy_levels) << p;
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(result.partition.block(u), reference.partition.block(u))
          << "p=" << p << " node " << u;
    }
  }
}

TEST(SpmdPipeline, RepeatedRunsAreIdentical) {
  const StaticGraph g = make_instance("delaunay14", 3);
  Config config = Config::preset(Preset::kMinimal, 4);
  config.seed = 9;
  PERuntime first(2, config.seed);
  PERuntime second(2, config.seed);
  const PartitionResult a =
      Partitioner(Context::spmd(config, first)).partition(g);
  const PartitionResult b =
      Partitioner(Context::spmd(config, second)).partition(g);
  EXPECT_EQ(a.cut, b.cut);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(a.partition.block(u), b.partition.block(u));
  }
}

/// Acceptance criterion of the SPMD refactor: on the paper's geometric
/// instance families the parallel path must stay within 5% of the
/// sequential cut (both paths are deterministic, so this is a fixed
/// comparison, not a statistical one).
class SpmdParity : public ::testing::TestWithParam<std::string> {};

TEST_P(SpmdParity, CutWithinFivePercentOfSequential) {
  const StaticGraph g = make_instance(GetParam(), 11);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;
  const PartitionResult sequential =
      Partitioner(Context::sequential(config)).partition(g);
  ASSERT_TRUE(sequential.balanced);

  for (const int p : {2, 4}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult parallel =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    EXPECT_TRUE(parallel.balanced) << GetParam() << " p=" << p;
    EXPECT_LE(static_cast<double>(parallel.cut),
              1.05 * static_cast<double>(sequential.cut))
        << GetParam() << " p=" << p << ": parallel cut " << parallel.cut
        << " vs sequential " << sequential.cut;
  }
}

INSTANTIATE_TEST_SUITE_P(GeometricFamilies, SpmdParity,
                         ::testing::Values("rgg14", "delaunay14"));

TEST(SpmdPipeline, SurfacesCommunicationStats) {
  const StaticGraph g = make_instance("rgg14", 2);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 1;

  // Sequential runs leave the SPMD fields empty.
  const PartitionResult sequential =
      Partitioner(Context::sequential(config)).partition(g);
  EXPECT_EQ(sequential.num_pes, 0);
  EXPECT_TRUE(sequential.comm_per_pe.empty());

  PERuntime runtime(4, config.seed);
  const PartitionResult result =
      Partitioner(Context::spmd(config, runtime)).partition(g);
  EXPECT_EQ(result.num_pes, 4);
  ASSERT_EQ(result.comm_per_pe.size(), 4u);
  EXPECT_GT(result.comm.messages_sent, 0u);
  EXPECT_GT(result.comm.words_sent, 0u);
  EXPECT_GT(result.comm.barriers, 0u);

  std::uint64_t words = 0;
  for (const CommStats& s : result.comm_per_pe) {
    words += s.words_sent;
    // Collectives synchronize every PE, so each rank hits barriers.
    EXPECT_GT(s.barriers, 0u);
  }
  EXPECT_EQ(words, result.comm.words_sent);
}

TEST(SpmdPipeline, ResidentGraphMemoryIsShardedNotReplicated) {
  // The data-sharding acceptance criterion: each rank's peak resident
  // graph data (owned CSR + one-hop ghost halo, across the matcher's
  // ShardGraph and the refiner's block-row store) must stay strictly
  // below n for p >= 2 — the replica is no longer what the SPMD inner
  // loops read.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;

  // p = 1: the single rank owns all shards and all blocks.
  {
    PERuntime runtime(1, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    ASSERT_EQ(result.shard_memory_per_pe.size(), 1u);
    EXPECT_EQ(result.shard_memory_per_pe[0].owned_nodes, g.num_nodes());
    EXPECT_EQ(result.shard_memory_per_pe[0].ghost_nodes, 0u);
  }

  for (const int p : {2, 4}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    ASSERT_EQ(result.shard_memory_per_pe.size(), static_cast<std::size_t>(p));
    std::uint64_t total_owned = 0;
    for (int rank = 0; rank < p; ++rank) {
      const ShardFootprint& fp = result.shard_memory_per_pe[rank];
      EXPECT_GT(fp.owned_nodes, 0u) << "p=" << p << " rank " << rank;
      // Strictly below the replicated O(n)…
      EXPECT_LT(fp.resident_nodes(), g.num_nodes())
          << "p=" << p << " rank " << rank;
      // …and of the owned + one-hop-halo shape: roughly n/p owned (factor
      // 2 covers shard/block imbalance), with the halo a minority share.
      EXPECT_LE(fp.owned_nodes, 2u * g.num_nodes() / p)
          << "p=" << p << " rank " << rank;
      EXPECT_LT(fp.ghost_nodes, fp.owned_nodes)
          << "p=" << p << " rank " << rank;
      EXPECT_GT(fp.arcs, 0u);
      total_owned += fp.owned_nodes;
    }
    // Owned peaks are per-rank maxima over the levels of node partitions,
    // so they can exceed n only through the matcher/refiner mix.
    EXPECT_LE(total_owned, 2u * g.num_nodes()) << "p=" << p;
  }
}

TEST(SpmdPipeline, HierarchyStoreIsShardedAndHaloTrafficIsPerLevel) {
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kFast, 8);
  config.seed = 5;

  for (const int p : {1, 4}) {
    PERuntime runtime(p, config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);

    // Level shape surfaced with the result.
    ASSERT_EQ(result.hierarchy_level_nodes.size(), result.hierarchy_levels);
    ASSERT_GE(result.hierarchy_levels, 3u);
    EXPECT_EQ(result.hierarchy_level_nodes.front(), g.num_nodes());
    EXPECT_EQ(result.hierarchy_level_nodes.back(), result.coarsest_nodes);
    std::uint64_t replicated_baseline = 0;  // Σ n_level: the old design
    for (const NodeID n_level : result.hierarchy_level_nodes) {
      replicated_baseline += n_level;
    }

    // The resident hierarchy store: Σ_levels (n_level/p + halo) per rank,
    // strictly below the replicated Σ_levels n_level for p >= 2.
    ASSERT_EQ(result.hierarchy_memory_per_pe.size(),
              static_cast<std::size_t>(p));
    std::uint64_t total_owned = 0;
    for (const ShardFootprint& fp : result.hierarchy_memory_per_pe) {
      EXPECT_GT(fp.owned_nodes, 0u);
      if (p >= 2) {
        EXPECT_LT(fp.resident_nodes(), replicated_baseline) << "p=" << p;
        EXPECT_LE(fp.owned_nodes, 2 * replicated_baseline / p) << "p=" << p;
      }
      total_owned += fp.owned_nodes;
    }
    // Owned sets partition every level: the ranks' owned sums add up to
    // the replicated baseline exactly.
    EXPECT_EQ(total_owned, replicated_baseline) << "p=" << p;

    // Per-level halo-exchange breakdown: present for p >= 2, one entry
    // per contraction step, a subset of the totals.
    if (p == 1) {
      for (const LevelHaloStats& h : result.comm.halo_per_level) {
        EXPECT_EQ(h.messages, 0u);  // a single PE has no halo peers
      }
      continue;
    }
    ASSERT_FALSE(result.comm.halo_per_level.empty());
    EXPECT_LE(result.comm.halo_per_level.size(), result.hierarchy_levels);
    std::uint64_t halo_messages = 0;
    std::uint64_t halo_words = 0;
    for (const LevelHaloStats& h : result.comm.halo_per_level) {
      halo_messages += h.messages;
      halo_words += h.words;
    }
    EXPECT_GT(halo_messages, 0u);
    EXPECT_GT(halo_words, 0u);
    EXPECT_LE(halo_messages, result.comm.messages_sent);
    EXPECT_LE(halo_words, result.comm.words_sent);
  }
}

TEST(SpmdPipeline, SingleBlockAndTinyGraphs) {
  // k = 1: no quotient edges, no refinement — must still terminate.
  const StaticGraph g = grid_graph(8, 8);
  Config config = Config::preset(Preset::kMinimal, 1);
  config.seed = 1;
  PERuntime runtime(2, config.seed);
  const PartitionResult result =
      Partitioner(Context::spmd(config, runtime)).partition(g);
  EXPECT_EQ(validate_partition(g, result.partition), "");
  EXPECT_EQ(result.cut, 0);

  // More PEs than shards/blocks: idle PEs must stay in lockstep.
  const StaticGraph tiny = grid_graph(6, 4);
  Config tiny_config = Config::preset(Preset::kFast, 2);
  tiny_config.seed = 3;
  PERuntime big_runtime(4, tiny_config.seed);
  const PartitionResult tiny_result =
      Partitioner(Context::spmd(tiny_config, big_runtime)).partition(tiny);
  EXPECT_EQ(validate_partition(tiny, tiny_result.partition), "");
  EXPECT_TRUE(tiny_result.balanced);
}

}  // namespace
}  // namespace kappa
