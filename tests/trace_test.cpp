/// \file trace_test.cpp
/// \brief Tests of the observability layer: the per-rank span recorder,
/// the merged Chrome-trace export, the unified metrics registry, and the
/// two guarantees the layer makes — CommStats aggregation covers every
/// field, and tracing is observer-only (a traced and an untraced run
/// produce byte-identical partitions, in-process and across forked TCP
/// processes).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>

#include <netinet/in.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics_export.hpp"
#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "parallel/channel.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/transport_tcp.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace kappa {
namespace {

// ------------------------------------------------------------ recorder ----

TEST(TraceRecorder, NestedSpansRecordContainment) {
  TraceRecorder recorder(16);
  const ThreadTraceScope bind(&recorder);
  {
    TraceSpan outer("outer", 7, 8);
    {
      TraceSpan inner("inner");
      KAPPA_TRACE_INSTANT("tick", 3);
    }
  }
  // Completion order: the instant, then the inner span, then the outer.
  const std::vector<TraceEvent>& events = recorder.read_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "tick");
  EXPECT_EQ(events[0].kind, TraceEventKind::kInstant);
  EXPECT_EQ(events[0].arg0, 3u);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].arg0, 7u);
  EXPECT_EQ(events[2].arg1, 8u);
  // The outer interval contains the inner one, which contains the tick.
  const TraceEvent& outer = events[2];
  const TraceEvent& inner = events[1];
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
  EXPECT_LE(inner.start_ns, events[0].start_ns);
  EXPECT_EQ(recorder.read_dropped(), 0u);
}

TEST(TraceRecorder, RingOverflowDropsAndCounts) {
  TraceRecorder recorder(4);
  const ThreadTraceScope bind(&recorder);
  for (int i = 0; i < 6; ++i) {
    KAPPA_TRACE_INSTANT("e", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(recorder.read_events().size(), 4u);
  EXPECT_EQ(recorder.read_dropped(), 2u);
  // The first `capacity` events survive; overflow drops the tail.
  EXPECT_EQ(recorder.read_events()[3].arg0, 3u);
}

TEST(TraceRecorder, UnboundThreadSitesAreNoops) {
  ASSERT_EQ(thread_trace(), nullptr);
  {
    TraceSpan span("ignored");
    KAPPA_TRACE_COUNTER("ignored", 1);
    KAPPA_TRACE_INSTANT("ignored");
  }  // must not crash, must not record anywhere
}

TEST(TraceRecorder, EnvironmentTogglesAndBufferOverride) {
  ASSERT_EQ(::unsetenv("KAPPA_TRACE"), 0);
  EXPECT_FALSE(trace_run_enabled(false));
  EXPECT_TRUE(trace_run_enabled(true));
  ASSERT_EQ(::setenv("KAPPA_TRACE", "1", 1), 0);
  EXPECT_TRUE(trace_run_enabled(false));
  ASSERT_EQ(::setenv("KAPPA_TRACE", "0", 1), 0);
  EXPECT_FALSE(trace_run_enabled(false));
  ASSERT_EQ(::unsetenv("KAPPA_TRACE"), 0);

  ASSERT_EQ(::unsetenv("KAPPA_TRACE_BUFFER"), 0);
  EXPECT_EQ(trace_buffer_capacity(), TraceRecorder::kDefaultCapacity);
  ASSERT_EQ(::setenv("KAPPA_TRACE_BUFFER", "64", 1), 0);
  EXPECT_EQ(trace_buffer_capacity(), 64u);
  ASSERT_EQ(::unsetenv("KAPPA_TRACE_BUFFER"), 0);
}

// ------------------------------------------------------ export helpers ----

/// Structural JSON well-formedness without a parser: every brace/bracket
/// outside string literals balances, and the document is one object.
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

bool has_name(const MergedTrace& trace, const std::string& name) {
  for (const std::string& n : trace.names) {
    if (n == name) return true;
  }
  return false;
}

TEST(ChromeTrace, LocalMergeExportsWellFormedJson) {
  TraceRecorder recorder(16);
  {
    const ThreadTraceScope bind(&recorder);
    TraceSpan span("alpha", 1, 2);
    KAPPA_TRACE_COUNTER("gauge", 41);
    KAPPA_TRACE_INSTANT("mark");
  }
  const MergedTrace merged = merge_local_trace(recorder, 0, 1);
  EXPECT_EQ(merged.num_ranks, 1);
  ASSERT_EQ(merged.dropped_per_rank, std::vector<std::uint64_t>{0});
  EXPECT_TRUE(has_name(merged, "alpha"));
  EXPECT_TRUE(has_name(merged, "gauge"));
  EXPECT_TRUE(has_name(merged, "mark"));

  std::ostringstream out;
  write_chrome_trace(merged, out);
  const std::string json = out.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"num_ranks\":1"), std::string::npos);
}

// ----------------------------------------------------- traced SPMD runs ----

struct CaptureSink final : TraceSink {
  MergedTrace trace;
  int fired = 0;
  void on_trace(const MergedTrace& merged) override {
    trace = merged;
    ++fired;
  }
};

/// Shared p=4 in-process run; tracing toggled by the caller's config.
PartitionResult run_inproc(const StaticGraph& graph, const Config& config,
                           TraceSink* sink) {
  PERuntime runtime(4, config.seed);
  Partitioner partitioner(Context::spmd(config, runtime));
  partitioner.set_trace_sink(sink);
  return partitioner.partition(graph);
}

TEST(TracedRun, InprocMergeCoversEveryRank) {
  const StaticGraph graph = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;
  config.trace_enabled = true;

  CaptureSink sink;
  (void)run_inproc(graph, config, &sink);
  ASSERT_EQ(sink.fired, 1);
  const MergedTrace& trace = sink.trace;
  EXPECT_EQ(trace.num_ranks, 4);
  ASSERT_EQ(trace.dropped_per_rank.size(), 4u);
  for (const std::uint64_t dropped : trace.dropped_per_rank) {
    EXPECT_EQ(dropped, 0u);
  }
  // One process, one steady clock: rank 0's offset is zero by
  // definition and the handshake's estimates for the others are pure
  // scheduling jitter — microseconds, bounded here at 100 ms.
  ASSERT_EQ(trace.clock_offset_ns.size(), 4u);
  EXPECT_EQ(trace.clock_offset_ns[0], 0);
  for (const std::int64_t offset : trace.clock_offset_ns) {
    EXPECT_LT(offset, 100'000'000);
    EXPECT_GT(offset, -100'000'000);
  }

  std::vector<bool> rank_has_events(4, false);
  std::vector<std::uint64_t> last_start(4, 0);
  int last_rank = 0;
  for (const MergedTraceEvent& event : trace.events) {
    ASSERT_GE(event.rank, 0);
    ASSERT_LT(event.rank, 4);
    const auto r = static_cast<std::size_t>(event.rank);
    rank_has_events[r] = true;
    // Sorted by (rank, aligned start): each rank's track is monotone.
    EXPECT_GE(event.rank, last_rank);
    EXPECT_GE(event.start_ns, last_start[r]);
    last_rank = event.rank;
    last_start[r] = event.start_ns;
  }
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_TRUE(rank_has_events[static_cast<std::size_t>(rank)])
        << "rank " << rank << " contributed no events";
  }
  for (const char* name :
       {"phase.coarsen", "phase.initial", "phase.refine", "coarsen.level",
        "refine.iteration"}) {
    EXPECT_TRUE(has_name(trace, name)) << "span name missing: " << name;
  }

  std::ostringstream out;
  write_chrome_trace(trace, out);
  EXPECT_TRUE(json_balanced(out.str()));
}

TEST(TracedRun, UndersizedBufferCountsDropsInsteadOfGrowing) {
  const StaticGraph graph = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;
  config.trace_enabled = true;

  ASSERT_EQ(::setenv("KAPPA_TRACE_BUFFER", "8", 1), 0);
  CaptureSink sink;
  (void)run_inproc(graph, config, &sink);
  ASSERT_EQ(::unsetenv("KAPPA_TRACE_BUFFER"), 0);

  ASSERT_EQ(sink.fired, 1);
  ASSERT_EQ(sink.trace.dropped_per_rank.size(), 4u);
  std::vector<std::size_t> events_per_rank(4, 0);
  for (const MergedTraceEvent& event : sink.trace.events) {
    ++events_per_rank[static_cast<std::size_t>(event.rank)];
  }
  for (int rank = 0; rank < 4; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    EXPECT_LE(events_per_rank[r], 8u);
    EXPECT_GT(sink.trace.dropped_per_rank[r], 0u)
        << "rank " << rank << " should have overflowed an 8-slot ring";
  }
}

TEST(TracedRun, ObserverOnlyPartitionByteIdentical) {
  const StaticGraph graph = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  config.trace_enabled = false;
  const PartitionResult plain = run_inproc(graph, config, nullptr);

  config.trace_enabled = true;
  CaptureSink sink;
  const PartitionResult traced = run_inproc(graph, config, &sink);

  ASSERT_EQ(sink.fired, 1);
  EXPECT_EQ(traced.cut, plain.cut);
  EXPECT_EQ(traced.balance, plain.balance);
  ASSERT_EQ(traced.partition.k(), plain.partition.k());
  for (NodeID u = 0; u < graph.num_nodes(); ++u) {
    ASSERT_EQ(traced.partition.block(u), plain.partition.block(u))
        << "node " << u;
  }
}

// -------------------------------------------------- forked TCP tracing ----

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TcpOptions local_options(int rank, int num_ranks, std::uint16_t port) {
  TcpOptions options;
  options.rank = rank;
  options.num_ranks = num_ranks;
  options.rendezvous_host = "127.0.0.1";
  options.rendezvous_port = port;
  options.connect_timeout_ms = 20000;
  options.recv_timeout_ms = 120000;
  return options;
}

std::vector<int> spawn_ranks(int num_ranks,
                             const std::function<int(int)>& body) {
  std::vector<pid_t> pids(static_cast<std::size_t>(num_ranks), -1);
  for (int rank = 0; rank < num_ranks; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      int code = 43;
      try {
        code = body(rank);
      } catch (const TransportError&) {
        code = 42;
      } catch (...) {
      }
      std::_Exit(code);
    }
    EXPECT_GT(pid, 0);
    pids[static_cast<std::size_t>(rank)] = pid;
  }
  std::vector<int> codes(static_cast<std::size_t>(num_ranks), -1);
  for (int rank = 0; rank < num_ranks; ++rank) {
    int status = 0;
    EXPECT_EQ(::waitpid(pids[static_cast<std::size_t>(rank)], &status, 0),
              pids[static_cast<std::size_t>(rank)]);
    codes[static_cast<std::size_t>(rank)] =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return codes;
}

TEST(TracedRun, TcpProcessesMergeOnRankZeroWithAlignedClocks) {
  // Four localhost processes, one traced run: the sink must fire exactly
  // once (on the rank-0 process), the merged trace must carry clock-
  // aligned, sorted events from every rank, and no ring may overflow.
  // Non-zero exit codes name the failed check.
  const StaticGraph graph = make_instance("rgg14", 11);
  const std::uint16_t port = pick_free_port();
  const auto codes = spawn_ranks(4, [&](int rank) -> int {
    Config config = Config::preset(Preset::kMinimal, 8);
    config.seed = 42;
    config.trace_enabled = true;
    PERuntime runtime(make_tcp_fabric(local_options(rank, 4, port)),
                      config.seed);
    CaptureSink sink;
    Partitioner partitioner(Context::spmd(config, runtime));
    partitioner.set_trace_sink(&sink);
    (void)partitioner.partition(graph);
    if (rank != 0) return sink.fired == 0 ? 0 : 50;
    if (sink.fired != 1) return 51;
    const MergedTrace& trace = sink.trace;
    if (trace.num_ranks != 4) return 52;
    if (trace.dropped_per_rank.size() != 4 ||
        trace.clock_offset_ns.size() != 4) {
      return 53;
    }
    for (const std::uint64_t dropped : trace.dropped_per_rank) {
      if (dropped != 0) return 54;
    }
    std::vector<bool> seen(4, false);
    std::vector<std::uint64_t> last_start(4, 0);
    int last_rank = 0;
    for (const MergedTraceEvent& event : trace.events) {
      if (event.rank < 0 || event.rank >= 4) return 55;
      const auto r = static_cast<std::size_t>(event.rank);
      seen[r] = true;
      // Sorted by (rank, start) with starts on rank 0's clock: each
      // rank's track must be monotone after offset alignment.
      if (event.rank < last_rank) return 56;
      if (event.start_ns < last_start[r]) return 56;
      last_rank = event.rank;
      last_start[r] = event.start_ns;
    }
    for (const bool s : seen) {
      if (!s) return 57;
    }
    for (const char* name : {"phase.coarsen", "phase.initial",
                             "phase.refine"}) {
      bool found = false;
      for (const std::string& n : trace.names) found |= (n == name);
      if (!found) return 58;
    }
    return 0;
  });
  EXPECT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));
}

// ---------------------------------------------------- metrics registry ----

TEST(MetricsRegistry, MatchesLegacyResultCounters) {
  // The registry is a renaming, never a recomputation: every exported
  // value must equal the PartitionResult field it came from.
  const StaticGraph graph = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 3;
  PERuntime runtime(4, config.seed);
  const PartitionResult result =
      Partitioner(Context::spmd(config, runtime)).partition(graph);

  const MetricsRegistry registry =
      metrics_from_result(result, config, runtime.backend());

  EXPECT_EQ(registry.str("run.backend"), runtime.backend());
  EXPECT_EQ(registry.u64("run.k"), static_cast<std::uint64_t>(config.k));
  EXPECT_EQ(registry.u64("run.seed"), config.seed);
  EXPECT_EQ(registry.u64("run.num_pes"), 4u);

  EXPECT_EQ(registry.i64("partition.cut"), result.cut);
  EXPECT_EQ(registry.f64("partition.balance"), result.balance);
  EXPECT_EQ(registry.u64("partition.feasible"), result.balanced ? 1u : 0u);

  EXPECT_EQ(registry.f64("time.total_s"), result.total_time);
  EXPECT_EQ(registry.f64("time.coarsen_s"), result.coarsening_time);
  EXPECT_EQ(registry.u64("hierarchy.levels"), result.hierarchy_levels);
  EXPECT_EQ(registry.u64_list("hierarchy.level_nodes").size(),
            result.hierarchy_level_nodes.size());

  EXPECT_EQ(registry.u64("comm.messages_sent"), result.comm.messages_sent);
  EXPECT_EQ(registry.u64("comm.words_sent"), result.comm.words_sent);
  EXPECT_EQ(registry.u64("comm.messages_received"),
            result.comm.messages_received);
  EXPECT_EQ(registry.u64("comm.words_received"), result.comm.words_received);
  EXPECT_EQ(registry.u64("comm.barriers"), result.comm.barriers);
  const std::vector<std::uint64_t>& words_per_rank =
      registry.u64_list("comm.per_rank.words_sent");
  ASSERT_EQ(words_per_rank.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(words_per_rank[r], result.comm_per_pe[r].words_sent);
  }
  EXPECT_EQ(registry.u64_list("comm.halo.messages_per_level").size(),
            result.comm.halo_per_level.size());

  PairShipStats ship_total;
  for (const PairShipStats& s : result.pair_ship_per_pe) ship_total += s;
  EXPECT_EQ(registry.u64("ship.pairs_executed"), ship_total.pairs_executed);
  EXPECT_EQ(registry.u64("ship.rows_shipped"), ship_total.rows_shipped);

  EXPECT_EQ(registry.u64_list("memory.shard.owned_per_rank").size(), 4u);
  EXPECT_EQ(registry.u64_list("async.pairs_per_rank").size(),
            result.async_pairs_per_pe.size());

  // In a closed run every delivered message was sent by someone: the
  // receive-side totals mirror the send-side totals over all ranks.
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const CommStats& s : result.comm_per_pe) {
    sent += s.messages_sent;
    received += s.messages_received;
  }
  EXPECT_EQ(sent, received);

  std::ostringstream out;
  registry.write_json(out);
  EXPECT_TRUE(json_balanced(out.str()));
}

// ----------------------------------------------- CommStats aggregation ----

// Pinned completeness guard: total_comm_stats must cover every field. The
// static_assert trips whenever CommStats grows, forcing whoever adds a
// field to extend the aggregation (comm_stats.hpp) AND this test.
static_assert(sizeof(CommStats) ==
                  12 * sizeof(std::uint64_t) +
                      sizeof(std::vector<LevelHaloStats>),
              "CommStats changed shape: update total_comm_stats() and "
              "TotalCommStats.AggregatesEveryField");

TEST(TotalCommStats, AggregatesEveryField) {
  CommStats a;
  a.messages_sent = 1;
  a.words_sent = 2;
  a.messages_received = 3;
  a.words_received = 4;
  a.barriers = 5;
  a.collective_idle_ns = 6;
  a.recv_idle_ns = 7;
  a.rounds_waited = 8;
  a.wire_bytes_sent = 9;
  a.wire_bytes_received = 10;
  a.heartbeat_frames_sent = 11;
  a.heartbeat_words_sent = 12;
  a.halo_per_level = {{100, 200}};

  CommStats b;
  b.messages_sent = 10;
  b.words_sent = 20;
  b.messages_received = 30;
  b.words_received = 40;
  b.barriers = 3;  // fewer than a's: barriers aggregate by max, not sum
  b.collective_idle_ns = 60;
  b.recv_idle_ns = 70;
  b.rounds_waited = 80;
  b.wire_bytes_sent = 90;
  b.wire_bytes_received = 100;
  b.heartbeat_frames_sent = 110;
  b.heartbeat_words_sent = 120;
  b.halo_per_level = {{1000, 2000}, {1, 2}};

  const CommStats total = total_comm_stats({a, b});
  EXPECT_EQ(total.messages_sent, 11u);
  EXPECT_EQ(total.words_sent, 22u);
  EXPECT_EQ(total.messages_received, 33u);
  EXPECT_EQ(total.words_received, 44u);
  EXPECT_EQ(total.barriers, 5u);  // max: ranks pass each barrier together
  EXPECT_EQ(total.collective_idle_ns, 66u);
  EXPECT_EQ(total.recv_idle_ns, 77u);
  EXPECT_EQ(total.idle_ns(), 143u);
  EXPECT_EQ(total.rounds_waited, 88u);
  EXPECT_EQ(total.wire_bytes_sent, 99u);
  EXPECT_EQ(total.wire_bytes_received, 110u);
  EXPECT_EQ(total.heartbeat_frames_sent, 121u);
  EXPECT_EQ(total.heartbeat_words_sent, 132u);
  ASSERT_EQ(total.halo_per_level.size(), 2u);
  EXPECT_EQ(total.halo_per_level[0].messages, 1100u);
  EXPECT_EQ(total.halo_per_level[0].words, 2200u);
  EXPECT_EQ(total.halo_per_level[1].messages, 1u);
  EXPECT_EQ(total.halo_per_level[1].words, 2u);
}

}  // namespace
}  // namespace kappa
