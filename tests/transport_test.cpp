/// \file transport_test.cpp
/// \brief Tests of the pluggable transport layer: the per-source mailbox,
/// fail-fast runtime construction, and the TCP socket backend — including
/// the cross-backend acceptance criterion (same seed, byte-identical
/// partition from the in-process fabric and four localhost processes) and
/// the failure-surfacing guarantees (a dead or silent peer becomes a
/// TransportError within the configured deadline, never a hang).
///
/// The multi-process tests fork() before any thread exists in the child:
/// each child builds its own TCP fabric (whose receiver threads are
/// process-private) and reports through its exit status or a temp file.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>

#include <netinet/in.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/validation.hpp"
#include "parallel/channel.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/transport_tcp.hpp"

namespace kappa {
namespace {

// ------------------------------------------------------------ Mailbox ----

TEST(Mailbox, FifoPerSource) {
  Mailbox box;
  box.push({1, {10}});
  box.push({2, {20}});
  box.push({1, {11}});
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.pop(1).payload, (std::vector<std::uint64_t>{10}));
  EXPECT_EQ(box.pop(1).payload, (std::vector<std::uint64_t>{11}));
  EXPECT_EQ(box.pop(2).payload, (std::vector<std::uint64_t>{20}));
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, AnySourcePopsInArrivalOrder) {
  // The per-source queues must preserve the single-queue semantics for
  // any-source receives: global arrival order, not source order.
  Mailbox box;
  box.push({3, {30}});
  box.push({0, {1}});
  box.push({3, {31}});
  box.push({1, {10}});
  std::vector<int> sources;
  for (int i = 0; i < 4; ++i) sources.push_back(box.pop(-1).source);
  EXPECT_EQ(sources, (std::vector<int>{3, 0, 3, 1}));
}

TEST(Mailbox, PopUntilTimesOutEmpty) {
  Mailbox box;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  EXPECT_FALSE(box.pop_until(0, deadline).has_value());
  EXPECT_LT(std::chrono::steady_clock::now(),
            deadline + std::chrono::seconds(5));
}

TEST(Mailbox, FinishedSourceDrainsThenThrows) {
  Mailbox box;
  box.push({0, {7}});
  box.finish_source(0);
  EXPECT_EQ(box.pop(0).payload, (std::vector<std::uint64_t>{7}));
  EXPECT_THROW((void)box.pop(0), TransportError);
  // Any-source: every registered source finished and empty also throws.
  EXPECT_THROW((void)box.pop(-1), TransportError);
}

TEST(Mailbox, FailPoisonsEveryPop) {
  Mailbox box;
  box.push({0, {7}});
  box.fail("peer died");
  EXPECT_THROW((void)box.pop(0), TransportError);
  EXPECT_THROW((void)box.try_pop(-1), TransportError);
}

// ------------------------------------- fail-fast runtime construction ----

TEST(PERuntimeValidation, RejectsNonPositivePeCount) {
  EXPECT_THROW(PERuntime runtime(0), std::invalid_argument);
  EXPECT_THROW(PERuntime runtime(-2), std::invalid_argument);
}

TEST(PESubGroupValidation, RejectsMalformedLocalArguments) {
  PERuntime runtime(1);
  runtime.run([&](PEContext& pe) {
    // Owner outside the rank range.
    EXPECT_THROW(PESubGroup(pe, {5}, {}), std::invalid_argument);
    // A rank is not its own neighbor.
    EXPECT_THROW(PESubGroup(pe, {0}, {0}), std::invalid_argument);
    // Neighbor outside the rank range.
    EXPECT_THROW(PESubGroup(pe, {0}, {3}), std::invalid_argument);
  });
}

TEST(PESubGroupValidation, DuplicateNeighborThrows) {
  PERuntime runtime(2);
  runtime.run([&](PEContext& pe) {
    const int other = 1 - pe.rank();
    EXPECT_THROW(PESubGroup(pe, {0, 1}, {other, other}),
                 std::invalid_argument);
  });
}

TEST(PESubGroupValidation, AsymmetricNeighborListsThrowOnEveryRank) {
  // Rank 0 lists rank 1 but not vice versa — exchange() would deadlock
  // (rank 0 waits forever for a bundle rank 1 never sends). validate()
  // turns that into an immediate error on *every* rank; debug builds run
  // it automatically at construction.
  PERuntime runtime(2);
  runtime.run([&](PEContext& pe) {
    std::vector<int> neighbors;
    if (pe.rank() == 0) neighbors.push_back(1);
    EXPECT_THROW(
        {
          PESubGroup group(pe, {0, 1}, neighbors);
          group.validate();
        },
        std::invalid_argument);
  });
}

TEST(PESubGroupValidation, MismatchedOwnerMapsThrowOnEveryRank) {
  PERuntime runtime(2);
  runtime.run([&](PEContext& pe) {
    // Symmetric neighbors, but the ranks disagree on who hosts virtual
    // PE 1 — rank-local routing would silently diverge.
    const std::vector<int> owner =
        pe.rank() == 0 ? std::vector<int>{0, 1} : std::vector<int>{0, 0};
    EXPECT_THROW(
        {
          PESubGroup group(pe, owner, {1 - pe.rank()});
          group.validate();
        },
        std::invalid_argument);
  });
}

// ------------------------------------------------------ TCP multi-proc ----

/// Binds an ephemeral localhost port, closes the socket, and returns the
/// port number: free at pick time, immediately reusable by rank 0.
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TcpOptions local_options(int rank, int num_ranks, std::uint16_t port,
                         int recv_timeout_ms = 30000) {
  TcpOptions options;
  options.rank = rank;
  options.num_ranks = num_ranks;
  options.rendezvous_host = "127.0.0.1";
  options.rendezvous_port = port;
  options.connect_timeout_ms = 20000;
  options.recv_timeout_ms = recv_timeout_ms;
  return options;
}

/// Forks one child per rank; each runs \p body(rank) and exits with its
/// return value (42 on uncaught TransportError, 43 on any other
/// exception). Returns the children's exit codes indexed by rank.
std::vector<int> spawn_ranks(int num_ranks,
                             const std::function<int(int)>& body) {
  std::vector<pid_t> pids(static_cast<std::size_t>(num_ranks), -1);
  for (int rank = 0; rank < num_ranks; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      int code = 43;
      try {
        code = body(rank);
      } catch (const TransportError&) {
        code = 42;
      } catch (...) {
      }
      std::_Exit(code);
    }
    EXPECT_GT(pid, 0);
    pids[static_cast<std::size_t>(rank)] = pid;
  }
  std::vector<int> codes(static_cast<std::size_t>(num_ranks), -1);
  for (int rank = 0; rank < num_ranks; ++rank) {
    int status = 0;
    EXPECT_EQ(::waitpid(pids[static_cast<std::size_t>(rank)], &status, 0),
              pids[static_cast<std::size_t>(rank)]);
    codes[static_cast<std::size_t>(rank)] =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return codes;
}

TEST(TcpTransport, PingPongCollectivesAndWireBytes) {
  const std::uint16_t port = pick_free_port();
  const auto codes = spawn_ranks(2, [port](int rank) -> int {
    PERuntime runtime(make_tcp_fabric(local_options(rank, 2, port)),
                      /*seed=*/7);
    const std::vector<CommStats> stats =
        runtime.run([](PEContext& pe) {
          // Point-to-point ping-pong on the application lane.
          if (pe.rank() == 0) {
            pe.send(1, {1, 2, 3});
            const Message echo = pe.receive(1);
            if (echo.payload != std::vector<std::uint64_t>{3, 2, 1}) {
              throw std::logic_error("bad echo");
            }
          } else {
            const Message ping = pe.receive(0);
            pe.send(0, {ping.payload[2], ping.payload[1], ping.payload[0]});
          }
          // The full collective family, generic over transport p2p.
          if (pe.all_reduce_sum(static_cast<std::uint64_t>(pe.rank()) + 1) !=
              3) {
            throw std::logic_error("bad all_reduce_sum");
          }
          if (pe.all_gather(static_cast<std::uint64_t>(pe.rank()) * 10) !=
              std::vector<std::uint64_t>{0, 10}) {
            throw std::logic_error("bad all_gather");
          }
          const auto ragged = pe.all_gather_vectors(std::vector<std::uint64_t>(
              static_cast<std::size_t>(pe.rank()) + 1, 9));
          if (ragged[0].size() != 1 || ragged[1].size() != 2) {
            throw std::logic_error("bad all_gather_vectors");
          }
          const auto word =
              pe.broadcast(pe.rank() == 1
                               ? std::vector<std::uint64_t>{77}
                               : std::vector<std::uint64_t>{},
                           1);
          if (word != std::vector<std::uint64_t>{77}) {
            throw std::logic_error("bad broadcast");
          }
          pe.barrier();
        });
    // Only this process's rank is populated; real socket traffic flowed.
    const CommStats& mine = stats[static_cast<std::size_t>(rank)];
    if (mine.wire_bytes_sent == 0 || mine.wire_bytes_received == 0) {
      return 44;
    }
    if (runtime.primary_rank() != rank || runtime.num_pes() != 2) return 45;
    return 0;
  });
  EXPECT_EQ(codes, (std::vector<int>{0, 0}));
}

TEST(TcpTransport, PartitionBitIdenticalToInprocAcrossProcesses) {
  // The cross-backend acceptance criterion: one seed, one instance — the
  // in-process fabric at p = 4 and four localhost processes over TCP must
  // produce byte-identical partitions and identical modeled comm totals.
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  PERuntime inproc_runtime(4, config.seed);
  const PartitionResult inproc =
      Partitioner(Context::spmd(config, inproc_runtime)).partition(g);
  ASSERT_EQ(validate_partition(g, inproc.partition), "");

  const std::uint16_t port = pick_free_port();
  const std::string path =
      ::testing::TempDir() + "transport_bit_identity." +
      std::to_string(::getpid());
  const auto codes = spawn_ranks(4, [&](int rank) -> int {
    PERuntime runtime(
        make_tcp_fabric(local_options(rank, 4, port, /*recv_timeout_ms=*/
                                      120000)),
        config.seed);
    const PartitionResult result =
        Partitioner(Context::spmd(config, runtime)).partition(g);
    // Every rank holds the full result; rank 0 reports it to the parent.
    if (rank != 0) return 0;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return 46;
    std::fprintf(out, "%lld %llu %llu\n", static_cast<long long>(result.cut),
                 static_cast<unsigned long long>(result.comm.messages_sent),
                 static_cast<unsigned long long>(result.comm.words_sent));
    for (NodeID u = 0; u < g.num_nodes(); ++u) {
      std::fprintf(out, "%u\n", result.partition.block(u));
    }
    std::fclose(out);
    return 0;
  });
  EXPECT_EQ(codes, (std::vector<int>{0, 0, 0, 0}));

  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  long long cut = -1;
  unsigned long long messages = 0;
  unsigned long long words = 0;
  ASSERT_EQ(std::fscanf(in, "%lld %llu %llu", &cut, &messages, &words), 3);
  EXPECT_EQ(cut, static_cast<long long>(inproc.cut));
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    unsigned block = 0;
    ASSERT_EQ(std::fscanf(in, "%u", &block), 1) << "node " << u;
    ASSERT_EQ(block, inproc.partition.block(u)) << "node " << u;
  }
  std::fclose(in);
  std::remove(path.c_str());
  // The wire model is backend-independent: rank 0's modeled counters must
  // match the in-process run's rank 0 exactly.
  EXPECT_EQ(messages, inproc.comm_per_pe[0].messages_sent);
  EXPECT_EQ(words, inproc.comm_per_pe[0].words_sent);
}

TEST(TcpTransport, DeadPeerSurfacesAsErrorNotHang) {
  const std::uint16_t port = pick_free_port();
  const auto start = std::chrono::steady_clock::now();
  const auto codes = spawn_ranks(2, [port](int rank) -> int {
    auto fabric = make_tcp_fabric(local_options(rank, 2, port));
    if (rank == 1) {
      // Dies abruptly after the mesh is up: no BYE, no graceful close of
      // the runtime — rank 0 must see the EOF as a TransportError.
      std::_Exit(0);
    }
    Transport& pe = fabric->endpoint(0);
    (void)pe.receive(1, Lane::kApp);  // never sent -> peer-death error
    return 1;                         // unreachable
  });
  EXPECT_EQ(codes[0], 42);  // TransportError
  EXPECT_EQ(codes[1], 0);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(60));
}

TEST(TcpTransport, SilentPeerHitsReceiveDeadline) {
  const std::uint16_t port = pick_free_port();
  const auto start = std::chrono::steady_clock::now();
  const auto codes = spawn_ranks(2, [port](int rank) -> int {
    auto fabric = make_tcp_fabric(
        local_options(rank, 2, port, /*recv_timeout_ms=*/1000));
    if (rank == 1) {
      // Alive but silent: holds the connection open without sending.
      ::usleep(4000 * 1000);
      return 0;
    }
    Transport& pe = fabric->endpoint(0);
    try {
      (void)pe.receive(1, Lane::kApp);
      return 1;  // a message appeared out of nowhere
    } catch (const TransportError&) {
      return 0;  // the deadline fired
    }
  });
  EXPECT_EQ(codes, (std::vector<int>{0, 0}));
  // Deadline semantics: the error fired near the 1 s deadline, not after
  // the silent peer's 4 s nap (and certainly not never).
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(30));
}

}  // namespace
}  // namespace kappa
