/// \file util_test.cpp
/// \brief Tests for RNG, priority queues and statistics accumulators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/addressable_pq.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace kappa {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng base(7);
  Rng f1 = base.fork(0);
  Rng f2 = base.fork(1);
  Rng f1_again = base.fork(0);
  EXPECT_NE(f1(), f2());
  Rng f1_replay = Rng(7).fork(0);
  Rng f1_fresh = Rng(7).fork(0);
  EXPECT_EQ(f1_replay(), f1_fresh());
  (void)f1_again;
}

TEST(Rng, BoundedIsInRangeAndRoughlyUniform) {
  Rng rng(3);
  std::map<std::uint64_t, int> histogram;
  const int samples = 60'000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = rng.bounded(6);
    ASSERT_LT(v, 6u);
    ++histogram[v];
  }
  for (const auto& [value, count] : histogram) {
    EXPECT_NEAR(count, samples / 6, samples / 60) << "value " << value;
  }
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(5);
  const auto perm = rng.permutation(100);
  std::set<NodeID> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> values = {1, 2, 2, 3, 3, 3, 4};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

// ------------------------------------------------------ AddressablePQ ----

TEST(AddressablePQ, BasicPushPopOrder) {
  AddressablePQ<NodeID, int> pq(10);
  pq.push(3, 30);
  pq.push(1, 10);
  pq.push(7, 70);
  pq.push(2, 20);
  EXPECT_EQ(pq.size(), 4u);
  EXPECT_EQ(pq.top(), 7u);
  EXPECT_EQ(pq.top_key(), 70);
  EXPECT_EQ(pq.pop(), 7u);
  EXPECT_EQ(pq.pop(), 3u);
  EXPECT_EQ(pq.pop(), 2u);
  EXPECT_EQ(pq.pop(), 1u);
  EXPECT_TRUE(pq.empty());
}

TEST(AddressablePQ, UpdateKeyBothDirections) {
  AddressablePQ<NodeID, int> pq(5);
  for (NodeID i = 0; i < 5; ++i) pq.push(i, static_cast<int>(i));
  pq.update_key(0, 100);  // increase
  EXPECT_EQ(pq.top(), 0u);
  pq.update_key(0, -1);  // decrease
  EXPECT_EQ(pq.top(), 4u);
  EXPECT_EQ(pq.key(0), -1);
}

TEST(AddressablePQ, EraseMiddle) {
  AddressablePQ<NodeID, int> pq(5);
  for (NodeID i = 0; i < 5; ++i) pq.push(i, static_cast<int>(i * 10));
  pq.erase(2);
  EXPECT_FALSE(pq.contains(2));
  EXPECT_EQ(pq.size(), 4u);
  std::vector<NodeID> order;
  while (!pq.empty()) order.push_back(pq.pop());
  EXPECT_EQ(order, (std::vector<NodeID>{4, 3, 1, 0}));
}

TEST(AddressablePQ, PushOrUpdate) {
  AddressablePQ<NodeID, int> pq(4);
  pq.push_or_update(1, 5);
  pq.push_or_update(1, 50);
  EXPECT_EQ(pq.size(), 1u);
  EXPECT_EQ(pq.key(1), 50);
}

TEST(AddressablePQ, ClearKeepsCapacity) {
  AddressablePQ<NodeID, int> pq(4);
  pq.push(0, 1);
  pq.push(1, 2);
  pq.clear();
  EXPECT_TRUE(pq.empty());
  EXPECT_FALSE(pq.contains(0));
  pq.push(0, 3);
  EXPECT_EQ(pq.top(), 0u);
}

/// Property sweep: heap behaves like a reference multimap under random
/// operation sequences of varying sizes.
class AddressablePQProperty : public ::testing::TestWithParam<int> {};

TEST_P(AddressablePQProperty, MatchesReferenceImplementation) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  AddressablePQ<NodeID, long> pq(n);
  std::map<NodeID, long> reference;

  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.bounded(4));
    const NodeID id = static_cast<NodeID>(rng.bounded(n));
    const long key = static_cast<long>(rng.bounded(1000)) - 500;
    if (op == 0 && !pq.contains(id)) {
      pq.push(id, key);
      reference[id] = key;
    } else if (op == 1 && pq.contains(id)) {
      pq.update_key(id, key);
      reference[id] = key;
    } else if (op == 2 && pq.contains(id)) {
      pq.erase(id);
      reference.erase(id);
    } else if (op == 3 && !pq.empty()) {
      const long expected =
          std::max_element(reference.begin(), reference.end(),
                           [](const auto& a, const auto& b) {
                             return a.second < b.second;
                           })
              ->second;
      ASSERT_EQ(pq.top_key(), expected);
      reference.erase(pq.pop());
    }
    ASSERT_EQ(pq.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AddressablePQProperty,
                         ::testing::Values(2, 5, 17, 64, 257));

// -------------------------------------------------------------- stats ----

TEST(Stats, GeometricMeanMatchesClosedForm) {
  GeometricMean gm;
  gm.add(2.0);
  gm.add(8.0);
  EXPECT_NEAR(gm.value(), 4.0, 1e-12);
  gm.add(4.0);
  EXPECT_NEAR(gm.value(), 4.0, 1e-12);
  EXPECT_EQ(gm.count(), 3u);
}

TEST(Stats, GeometricMeanClampsNonPositive) {
  GeometricMean gm;
  gm.add(0.0);  // clamped to 1
  gm.add(100.0);
  EXPECT_NEAR(gm.value(), 10.0, 1e-9);
}

TEST(Stats, EmptyGeometricMeanIsZero) {
  GeometricMean gm;
  EXPECT_EQ(gm.value(), 0.0);
}

TEST(Stats, RunAggregateTracksColumns) {
  RunAggregate agg;
  agg.add(100, 1.03, 2.0);
  agg.add(80, 1.01, 4.0);
  agg.add(120, 1.05, 3.0);
  EXPECT_NEAR(agg.avg_cut(), 100.0, 1e-12);
  EXPECT_NEAR(agg.best_cut(), 80.0, 1e-12);
  EXPECT_NEAR(agg.avg_balance(), 1.03, 1e-12);
  EXPECT_NEAR(agg.avg_time(), 3.0, 1e-12);
  EXPECT_EQ(agg.count(), 3u);
}

}  // namespace
}  // namespace kappa
