/// \file watch_test.cpp
/// \brief Tests of kappa-watch: the ProgressBoard data plane, the
/// transport liveness hooks (queue depths, peer health, heartbeats), the
/// stall watchdog and snapshot sampler, and the acceptance criteria —
/// watch is observer-only (byte-identical partition with watch on or
/// off, in-process and across TCP processes), a SIGSTOP'd TCP rank is
/// classified *stalled* (not dead) with a stall report naming its open
/// span stack, and an abruptly killed rank still surfaces as the
/// dead-peer TransportError.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>

#include <netinet/in.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "generators/generators.hpp"
#include "graph/validation.hpp"
#include "parallel/pe_runtime.hpp"
#include "parallel/transport_tcp.hpp"
#include "parallel/watch.hpp"
#include "util/progress.hpp"
#include "util/trace.hpp"

namespace kappa {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "watch_test." + tag + "." +
         std::to_string(::getpid());
}

// ------------------------------------------------------- ProgressBoard ----

TEST(ProgressBoard, SnapshotAndPackRoundTrip) {
  ProgressBoard board;
  board.set_phase(ProgressPhase::kRefine, 100);
  board.set_level(3, 200);
  board.set_iteration(7, 300);
  board.count_pair(400);
  board.count_pair(500);

  const ProgressSnapshot snap = board.snapshot();
  EXPECT_EQ(snap.phase, ProgressPhase::kRefine);
  EXPECT_EQ(snap.level, 3u);
  EXPECT_EQ(snap.iteration, 7u);
  EXPECT_EQ(snap.pairs_executed, 2u);
  EXPECT_EQ(snap.advances, 5u);
  EXPECT_EQ(snap.last_advance_ns, 500u);

  const ProgressSnapshot wired = ProgressBoard::unpack(board.pack());
  EXPECT_EQ(wired.phase, snap.phase);
  EXPECT_EQ(wired.level, snap.level);
  EXPECT_EQ(wired.iteration, snap.iteration);
  EXPECT_EQ(wired.pairs_executed, snap.pairs_executed);
  EXPECT_EQ(wired.advances, snap.advances);
  EXPECT_EQ(wired.last_advance_ns, snap.last_advance_ns);
}

TEST(ProgressBoard, TraceSpansPublishToTheBoundBoard) {
  // TraceSpan pushes/pops on the thread's board even with tracing off —
  // span boundaries double as liveness advances for free.
  ProgressBoard board;
  const ThreadProgressScope bind(&board);
  const std::uint64_t before = board.snapshot().advances;
  {
    KAPPA_TRACE_SPAN("watch.outer");
    {
      KAPPA_TRACE_SPAN("watch.inner");
      const std::vector<const char*> open = board.open_spans();
      ASSERT_EQ(open.size(), 2u);
      EXPECT_STREQ(open[0], "watch.outer");
      EXPECT_STREQ(open[1], "watch.inner");
    }
  }
  EXPECT_TRUE(board.open_spans().empty());
  EXPECT_GE(board.snapshot().advances, before + 4);  // 2 pushes + 2 pops

  const std::vector<ProgressBoard::RecentEvent> recent =
      board.recent_events();
  ASSERT_FALSE(recent.empty());
  bool saw_inner = false;
  for (const ProgressBoard::RecentEvent& e : recent) {
    if (std::string(e.name) == "watch.inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_inner);
}

TEST(ProgressBoard, RecentRingIsBoundedAndAuxSlotsHold) {
  ProgressBoard board;
  for (int i = 0; i < 40; ++i) {
    board.push_span("watch.loop", static_cast<std::uint64_t>(i));
    board.pop_span(static_cast<std::uint64_t>(i));
  }
  EXPECT_LE(board.recent_events().size(), ProgressBoard::kRecentEvents);
  EXPECT_TRUE(board.open_spans().empty());

  board.set_aux(ProgressAux::kAsyncLocksHeld, 4);
  board.set_aux(ProgressAux::kAsyncGrantsInFlight, 2);
  board.set_aux(ProgressAux::kAsyncPairsDone, 9);
  EXPECT_EQ(board.aux(ProgressAux::kAsyncLocksHeld), 4u);
  EXPECT_EQ(board.aux(ProgressAux::kAsyncGrantsInFlight), 2u);
  EXPECT_EQ(board.aux(ProgressAux::kAsyncPairsDone), 9u);
}

// -------------------------------------------------------- WatchOptions ----

TEST(WatchOptions, EnvironmentOverridesConfig) {
  ::setenv("KAPPA_WATCH_OUT", "/tmp/env_override.jsonl", 1);
  ::setenv("KAPPA_STALL_TIMEOUT_MS", "1234", 1);
  ::setenv("KAPPA_WATCH_INTERVAL_MS", "77", 1);
  ::setenv("KAPPA_HEARTBEAT_INTERVAL_MS", "55", 1);
  const WatchOptions options = resolve_watch_options("config.jsonl", 10);
  ::unsetenv("KAPPA_WATCH_OUT");
  ::unsetenv("KAPPA_STALL_TIMEOUT_MS");
  ::unsetenv("KAPPA_WATCH_INTERVAL_MS");
  ::unsetenv("KAPPA_HEARTBEAT_INTERVAL_MS");
  EXPECT_EQ(options.snapshot_path, "/tmp/env_override.jsonl");
  EXPECT_EQ(options.stall_timeout_ms, 1234);
  EXPECT_EQ(options.sample_interval_ms, 77);
  EXPECT_EQ(options.heartbeat_interval_ms, 55);
  EXPECT_TRUE(options.enabled());

  const WatchOptions plain = resolve_watch_options("", 0);
  EXPECT_FALSE(plain.enabled());
}

TEST(WatchSink, OpensLazilyOnFirstRecord) {
  const std::string path = temp_path("lazy_sink");
  std::remove(path.c_str());
  {
    WatchSink sink(path);
    // No record appended: a watch with nothing to say leaves no file.
  }
  EXPECT_FALSE(std::ifstream(path).good());
  {
    WatchSink sink(path);
    sink.append("{\"schema\":\"kappa.snapshot.v1\"}");
  }
  EXPECT_EQ(count_substr(slurp(path), "kappa.snapshot.v1"), 1u);
  std::remove(path.c_str());
}

// ------------------------------------------- in-process liveness hooks ----

TEST(InprocWatch, QueueDepthsSeeUndrainedMailbox) {
  PERuntime runtime(2, /*seed=*/3);
  runtime.run([](PEContext& pe) {
    if (pe.rank() == 0) {
      pe.send(1, {11});
      pe.send(1, {22});
    }
    pe.barrier();  // in-process sends are delivered synchronously
    if (pe.rank() == 1) {
      const std::vector<LaneQueueDepth> depths = pe.queue_depths();
      std::size_t app_from_0 = 0;
      for (const LaneQueueDepth& d : depths) {
        if (d.source == 0 && d.lane == Lane::kApp) app_from_0 = d.depth;
      }
      if (app_from_0 != 2) throw std::logic_error("queue depth not seen");
      (void)pe.receive(0);
      (void)pe.receive(0);
    }
    pe.barrier();
  });
}

TEST(InprocWatch, PeerHealthReadsTheRegisteredBoard) {
  PERuntime runtime(2, /*seed=*/3);
  ProgressBoard board;  // outlives both rank threads
  runtime.run([&](PEContext& pe) {
    if (pe.rank() == 1) {
      const ThreadProgressScope bind(&board);
      progress_phase(ProgressPhase::kCoarsen);
      progress_level(5);
      pe.enable_watch(&board, 100);
      pe.barrier();  // board registered and populated
      pe.barrier();  // rank 0 done reading
      pe.disable_watch();
    } else {
      if (pe.peer_health(1).has_value()) {
        throw std::logic_error("heard from an unregistered peer");
      }
      pe.barrier();
      const std::optional<PeerHealth> health = pe.peer_health(1);
      if (!health.has_value()) throw std::logic_error("no peer health");
      if (health->dead) throw std::logic_error("live peer reported dead");
      if (health->progress.phase != ProgressPhase::kCoarsen ||
          health->progress.level != 5) {
        throw std::logic_error("peer progress not visible");
      }
      pe.barrier();
    }
  });
}

// --------------------------------------------- watchdog + sampler (inproc) --

TEST(RankWatch, CleanRunEmitsSnapshotsAndNoStallReports) {
  const StaticGraph g = make_instance("rgg14", 11);
  Config config = Config::preset(Preset::kMinimal, 8);
  config.seed = 42;

  // Reference: the identical run with watch off.
  PERuntime plain_runtime(4, config.seed);
  const PartitionResult plain =
      Partitioner(Context::spmd(config, plain_runtime)).partition(g);
  ASSERT_EQ(validate_partition(g, plain.partition), "");

  const std::string path = temp_path("clean_run");
  std::remove(path.c_str());
  config.watch_out = path;
  config.stall_timeout_ms = 30000;  // generous: a clean run never stalls
  config.watch_interval_ms = 50;
  PERuntime watched_runtime(4, config.seed);
  const PartitionResult watched =
      Partitioner(Context::spmd(config, watched_runtime)).partition(g);

  // Observer-only: byte-identical partition with watch on.
  EXPECT_EQ(watched.cut, plain.cut);
  for (NodeID u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(watched.partition.block(u), plain.partition.block(u))
        << "node " << u;
  }
  EXPECT_EQ(watched.comm.messages_sent, plain.comm.messages_sent);
  EXPECT_EQ(watched.comm.words_sent, plain.comm.words_sent);
  // In-process: heartbeats never touch a wire.
  EXPECT_EQ(watched.comm.heartbeat_frames_sent, 0u);

  const std::string log = slurp(path);
  EXPECT_GE(count_substr(log, "\"schema\":\"kappa.snapshot.v1\""), 1u);
  EXPECT_EQ(count_substr(log, "kappa.stall.v1"), 0u);
  // The final snapshot saw all four ranks.
  EXPECT_GE(count_substr(log, "\"num_ranks\":4"), 1u);
  std::remove(path.c_str());
}

TEST(RankWatch, WatchdogReportsARankStuckInsideASpan) {
  const std::string path = temp_path("inproc_stall");
  std::remove(path.c_str());
  PERuntime runtime(2, /*seed=*/7);
  std::vector<ProgressBoard> boards(2);
  WatchOptions options;
  options.snapshot_path = path;
  options.stall_timeout_ms = 100;
  options.sample_interval_ms = 50;
  WatchSink sink(path);
  std::uint64_t reports_on_rank0 = 0;
  runtime.run([&](PEContext& pe) {
    const std::size_t slot = static_cast<std::size_t>(pe.rank());
    const ThreadProgressScope bind(&boards[slot]);
    progress_phase(ProgressPhase::kRefine);
    RankWatch watch(pe, boards[slot], options, &sink,
                    /*run_sampler=*/pe.rank() == 0);
    if (pe.rank() == 0) {
      KAPPA_TRACE_SPAN("test.block");
      ::usleep(400 * 1000);  // no advances for 4x the stall timeout
    }
    pe.barrier();
    if (pe.rank() == 0) reports_on_rank0 = watch.stall_reports();
  });
  EXPECT_GE(reports_on_rank0, 1u);
  const std::string log = slurp(path);
  EXPECT_GE(count_substr(log, "\"schema\":\"kappa.stall.v1\""), 1u);
  // The report names the span the rank was stuck inside.
  EXPECT_GE(count_substr(log, "test.block"), 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------ TCP multi-proc ----

/// Binds an ephemeral localhost port, closes the socket, and returns the
/// port number: free at pick time, immediately reusable by rank 0.
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TcpOptions local_options(int rank, int num_ranks, std::uint16_t port,
                         int recv_timeout_ms = 30000) {
  TcpOptions options;
  options.rank = rank;
  options.num_ranks = num_ranks;
  options.rendezvous_host = "127.0.0.1";
  options.rendezvous_port = port;
  options.connect_timeout_ms = 20000;
  options.recv_timeout_ms = recv_timeout_ms;
  return options;
}

/// Forks one child per rank (body's return value becomes the exit code;
/// 42 on uncaught TransportError, 43 on any other exception) and returns
/// the exit codes indexed by rank. \p while_running runs in the parent
/// with the children's pids while they execute.
std::vector<int> spawn_ranks(
    int num_ranks, const std::function<int(int)>& body,
    const std::function<void(const std::vector<pid_t>&)>& while_running =
        nullptr) {
  std::vector<pid_t> pids(static_cast<std::size_t>(num_ranks), -1);
  for (int rank = 0; rank < num_ranks; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      int code = 43;
      try {
        code = body(rank);
      } catch (const TransportError&) {
        code = 42;
      } catch (...) {
      }
      std::_Exit(code);
    }
    EXPECT_GT(pid, 0);
    pids[static_cast<std::size_t>(rank)] = pid;
  }
  if (while_running) while_running(pids);
  std::vector<int> codes(static_cast<std::size_t>(num_ranks), -1);
  for (int rank = 0; rank < num_ranks; ++rank) {
    int status = 0;
    EXPECT_EQ(::waitpid(pids[static_cast<std::size_t>(rank)], &status, 0),
              pids[static_cast<std::size_t>(rank)]);
    codes[static_cast<std::size_t>(rank)] =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return codes;
}

TEST(TcpWatch, SigstoppedPeerIsStalledNotDeadAndTheRunRecovers) {
  // The acceptance scenario: rank 1 SIGSTOPs itself mid-run while rank 0
  // blocks in a receive. Rank 0's watchdog must classify rank 1 *stalled*
  // (connection up, no advance evidence) — not dead — and name rank 0's
  // own open span stack in the report. After SIGCONT the run completes
  // cleanly on both ranks: nobody died.
  const std::uint16_t port = pick_free_port();
  const std::string path = temp_path("tcp_stall");
  std::remove(path.c_str());
  const auto codes = spawn_ranks(
      2,
      [&](int rank) -> int {
        PERuntime runtime(make_tcp_fabric(local_options(
                              rank, 2, port, /*recv_timeout_ms=*/60000)),
                          /*seed=*/7);
        int code = 0;
        runtime.run([&](PEContext& pe) {
          ProgressBoard board;
          const ThreadProgressScope bind(&board);
          progress_phase(ProgressPhase::kRefine);
          WatchOptions options;
          options.snapshot_path = path;
          options.stall_timeout_ms = 300;
          options.sample_interval_ms = 100;
          options.heartbeat_interval_ms = 50;
          WatchSink sink(path);
          RankWatch watch(pe, board, options,
                          pe.rank() == 0 ? &sink : nullptr,
                          /*run_sampler=*/pe.rank() == 0);
          pe.barrier();
          if (pe.rank() == 1) {
            ::usleep(200 * 1000);
            ::raise(SIGSTOP);  // parent SIGCONTs us ~2 s later
            pe.send(0, {1});
          } else {
            // Last local advance, then block: the watchdog fires with
            // this span open while rank 1 is frozen.
            ::usleep(150 * 1000);
            KAPPA_TRACE_SPAN("test.wait");
            const Message msg = pe.receive(1);
            if (msg.payload != std::vector<std::uint64_t>{1}) code = 44;
            if (watch.stall_reports() == 0) code = 45;
            const std::optional<PeerHealth> health = pe.peer_health(1);
            if (!health.has_value() || health->dead) code = 46;
          }
        });
        return code;
      },
      [](const std::vector<pid_t>& pids) {
        ::usleep(2000 * 1000);
        ::kill(pids[1], SIGCONT);
      });
  EXPECT_EQ(codes, (std::vector<int>{0, 0}));
  const std::string log = slurp(path);
  EXPECT_GE(count_substr(log, "\"schema\":\"kappa.stall.v1\""), 1u);
  EXPECT_GE(count_substr(log, "test.wait"), 1u);
  // Rank 0's peers table carries the verdict on the frozen rank.
  EXPECT_GE(count_substr(log, "\"rank\":1,\"state\":\"stalled\""), 1u);
  EXPECT_EQ(count_substr(log, "\"rank\":1,\"state\":\"dead\""), 0u);
  std::remove(path.c_str());
}

TEST(TcpWatch, KilledPeerStillSurfacesAsDeadPeerError) {
  // PR 7's dead-peer guarantee survives the watch layer: an abrupt death
  // is a TransportError on the blocked receive (not reclassified as a
  // stall), and the transport's health verdict for the peer is `dead`.
  const std::uint16_t port = pick_free_port();
  const auto codes = spawn_ranks(2, [port](int rank) -> int {
    PERuntime runtime(make_tcp_fabric(local_options(rank, 2, port)),
                      /*seed=*/7);
    int code = 1;
    runtime.run([&](PEContext& pe) {
      ProgressBoard board;
      const ThreadProgressScope bind(&board);
      WatchOptions options;
      options.stall_timeout_ms = 300;
      options.heartbeat_interval_ms = 50;
      RankWatch watch(pe, board, options, nullptr, /*run_sampler=*/false);
      pe.barrier();
      if (pe.rank() == 1) {
        std::_Exit(0);  // no BYE, no teardown
      }
      try {
        (void)pe.receive(1);
        code = 44;  // a message appeared out of nowhere
      } catch (const TransportError&) {
        const std::optional<PeerHealth> health = pe.peer_health(1);
        if (health.has_value() && health->dead) throw;  // the expected path
        code = 47;  // error fired but the peer was not marked dead
      }
    });
    return code;
  });
  EXPECT_EQ(codes[0], 42);  // TransportError, with the peer marked dead
  EXPECT_EQ(codes[1], 0);
}

TEST(TcpWatch, WatchedTcpPartitionIsByteIdenticalToUnwatched) {
  const StaticGraph g = make_instance("rgg14", 11);
  Config base = Config::preset(Preset::kMinimal, 4);
  base.seed = 42;

  const auto run_and_dump = [&](const Config& config,
                                const std::string& out_path) {
    const std::uint16_t port = pick_free_port();
    return spawn_ranks(2, [&, port](int rank) -> int {
      PERuntime runtime(
          make_tcp_fabric(local_options(rank, 2, port,
                                        /*recv_timeout_ms=*/120000)),
          config.seed);
      const PartitionResult result =
          Partitioner(Context::spmd(config, runtime)).partition(g);
      if (rank != 0) return 0;
      // Watched runs must actually heartbeat; unwatched must not.
      const bool watch_on = !config.watch_out.empty();
      if (watch_on && result.comm.heartbeat_frames_sent == 0) return 48;
      if (!watch_on && result.comm.heartbeat_frames_sent != 0) return 49;
      std::FILE* out = std::fopen(out_path.c_str(), "w");
      if (out == nullptr) return 46;
      std::fprintf(out, "%lld\n", static_cast<long long>(result.cut));
      for (NodeID u = 0; u < g.num_nodes(); ++u) {
        std::fprintf(out, "%u\n", result.partition.block(u));
      }
      std::fclose(out);
      return 0;
    });
  };

  const std::string plain_path = temp_path("tcp_plain");
  ASSERT_EQ(run_and_dump(base, plain_path), (std::vector<int>{0, 0}));

  Config watched = base;
  watched.watch_out = temp_path("tcp_watch_log");
  watched.stall_timeout_ms = 60000;
  watched.heartbeat_interval_ms = 20;
  const std::string watched_path = temp_path("tcp_watched");
  ASSERT_EQ(run_and_dump(watched, watched_path), (std::vector<int>{0, 0}));

  const std::string a = slurp(plain_path);
  const std::string b = slurp(watched_path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical cut + assignment

  const std::string log = slurp(watched.watch_out);
  EXPECT_GE(count_substr(log, "\"schema\":\"kappa.snapshot.v1\""), 1u);
  EXPECT_EQ(count_substr(log, "kappa.stall.v1"), 0u);
  std::remove(plain_path.c_str());
  std::remove(watched_path.c_str());
  std::remove(watched.watch_out.c_str());
  std::remove((watched.watch_out + ".rank1").c_str());
}

}  // namespace
}  // namespace kappa
