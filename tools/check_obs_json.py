#!/usr/bin/env python3
"""Validates kappa observability dumps (CI traced-smoke / watched-smoke).

usage:
  check_obs_json.py trace   <trace.json>   <expected_ranks>
  check_obs_json.py metrics <metrics.json> <expected_ranks>
  check_obs_json.py watch   <watch.jsonl>  <expected_ranks> \\
                    [--allow-stalls | --expect-stall]

Stdlib only. Checks the documented shapes (README "Observability"):

trace — Chrome "Trace Event Format": traceEvents is a non-empty list
whose entries carry ph in {M, X, C, i}, pid 0 and an integer tid (the
rank); every rank contributes at least one span; the span taxonomy's
phase spans are present; otherData pins num_ranks and per-rank
dropped/clock-offset arrays of the right length. A nonzero ring-overflow
drop count FAILS the check — the trace silently lost events, so the
buffer (KAPPA_TRACE_BUFFER) must grow.

metrics — schema kappa.metrics.v1: a {"schema", "metrics"} document
whose entries are {"type", "value"} pairs with the value's JSON shape
matching the declared type; the core key set partition.cut /
run.num_pes / comm.words_sent must be present and run.num_pes must equal
the expected rank count.

watch — a kappa-watch JSONL stream (one JSON object per line) mixing
kappa.snapshot.v1 periodic snapshots and kappa.stall.v1 stall reports.
At least one snapshot must be present; snapshot seq values are strictly
increasing per emitting rank; the per-rank table lists every rank
exactly once with a state in {alive, stalled, dead, unknown} and the
delta counters are non-negative integers. A stall report in the stream
FAILS the check — a clean run has none — unless --allow-stalls is
given; --expect-stall inverts that: at least one stall report must be
present and each is shape-checked (progress word, non-empty open-span
stack, recent-event ring, queue depths, async-arbiter table, peer
table).
"""
import json
import sys

VALID_PH = {"M", "X", "C", "i"}
REQUIRED_SPANS = ("phase.coarsen", "phase.initial", "phase.refine")
REQUIRED_METRICS = ("partition.cut", "run.num_pes", "comm.words_sent",
                    "time.total_s", "run.backend")


def fail(message):
    print(f"check_obs_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, ranks):
    with open(path) as handle:
        doc = json.load(handle)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    span_ranks = set()
    span_names = set()
    for event in events:
        ph = event.get("ph")
        if ph not in VALID_PH:
            fail(f"bad ph in event {event!r}")
        if event.get("pid") != 0 or not isinstance(event.get("tid"), int):
            fail(f"bad pid/tid in event {event!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"bad ts in event {event!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"bad dur in event {event!r}")
            span_ranks.add(event["tid"])
            span_names.add(event.get("name"))
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("otherData missing")
    if other.get("num_ranks") != ranks:
        fail(f"num_ranks {other.get('num_ranks')!r}, expected {ranks}")
    dropped = other.get("dropped_per_rank")
    offsets = other.get("clock_offset_ns")
    if not isinstance(dropped, list) or len(dropped) != ranks:
        fail(f"dropped_per_rank wrong shape: {dropped!r}")
    if not isinstance(offsets, list) or len(offsets) != ranks:
        fail(f"clock_offset_ns wrong shape: {offsets!r}")
    if any(d != 0 for d in dropped):
        fail(f"ring-overflow drops {dropped} — raise KAPPA_TRACE_BUFFER")
    missing_ranks = set(range(ranks)) - span_ranks
    if missing_ranks:
        fail(f"ranks without any span: {sorted(missing_ranks)}")
    missing_spans = [n for n in REQUIRED_SPANS if n not in span_names]
    if missing_spans:
        fail(f"required spans missing: {missing_spans}")
    print(f"check_obs_json: trace ok — {len(events)} events, "
          f"{len(span_names)} span names, {ranks} ranks, 0 dropped")


def check_metrics(path, ranks):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != "kappa.metrics.v1":
        fail(f"schema {doc.get('schema')!r}, expected kappa.metrics.v1")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail("metrics missing or empty")
    shapes = {
        "u64": lambda v: isinstance(v, int) and v >= 0,
        "i64": lambda v: isinstance(v, int),
        "f64": lambda v: isinstance(v, (int, float)) or v is None,
        "str": lambda v: isinstance(v, str),
        "u64[]": lambda v: isinstance(v, list)
        and all(isinstance(x, int) and x >= 0 for x in v),
        "f64[]": lambda v: isinstance(v, list)
        and all(isinstance(x, (int, float)) or x is None for x in v),
    }
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or set(entry) != {"type", "value"}:
            fail(f"metric {name!r} is not a type/value pair: {entry!r}")
        checker = shapes.get(entry["type"])
        if checker is None:
            fail(f"metric {name!r} has unknown type {entry['type']!r}")
        if not checker(entry["value"]):
            fail(f"metric {name!r} value does not match type "
                 f"{entry['type']!r}: {entry['value']!r}")
    missing = [n for n in REQUIRED_METRICS if n not in metrics]
    if missing:
        fail(f"required metrics missing: {missing}")
    num_pes = metrics["run.num_pes"]["value"]
    if num_pes != ranks:
        fail(f"run.num_pes {num_pes}, expected {ranks}")
    print(f"check_obs_json: metrics ok — {len(metrics)} entries, "
          f"{ranks} ranks")


VALID_STATES = {"alive", "stalled", "dead", "unknown"}
VALID_LANES = {"app", "collective", "heartbeat"}
SNAPSHOT_DELTAS = ("wire_bytes_sent_delta", "wire_bytes_received_delta",
                   "heartbeat_frames_delta", "heartbeat_words_delta",
                   "pairs_delta", "advances_delta")


def is_u64(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_rank_table(table, ranks, where):
    if not isinstance(table, list) or len(table) != ranks:
        fail(f"{where}: rank table wrong shape (expected {ranks} rows): "
             f"{table!r}")
    seen = set()
    for row in table:
        if not isinstance(row, dict):
            fail(f"{where}: rank table row is not an object: {row!r}")
        for key in ("rank", "level", "iteration", "pairs", "advances",
                    "age_ms"):
            if not is_u64(row.get(key)):
                fail(f"{where}: rank row {key!r} bad: {row!r}")
        if row.get("state") not in VALID_STATES:
            fail(f"{where}: bad state {row.get('state')!r} in {row!r}")
        if not isinstance(row.get("phase"), str):
            fail(f"{where}: bad phase in {row!r}")
        seen.add(row["rank"])
    if seen != set(range(ranks)):
        fail(f"{where}: rank table does not list every rank exactly once: "
             f"{sorted(seen)}")


def check_snapshot(record, ranks, line_no):
    where = f"line {line_no} (snapshot)"
    for key in ("seq", "t_ns", "rank"):
        if not is_u64(record.get(key)):
            fail(f"{where}: {key!r} bad: {record.get(key)!r}")
    if record.get("num_ranks") != ranks:
        fail(f"{where}: num_ranks {record.get('num_ranks')!r}, "
             f"expected {ranks}")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or set(metrics) != set(SNAPSHOT_DELTAS):
        fail(f"{where}: metrics key set wrong: {metrics!r}")
    for key in SNAPSHOT_DELTAS:
        if not is_u64(metrics[key]):
            fail(f"{where}: metrics {key!r} bad: {metrics[key]!r}")
    check_rank_table(record.get("ranks"), ranks, where)


def check_stall(record, ranks, line_no):
    where = f"line {line_no} (stall)"
    for key in ("rank", "t_ns", "stalled_ms"):
        if not is_u64(record.get(key)):
            fail(f"{where}: {key!r} bad: {record.get(key)!r}")
    progress = record.get("progress")
    if not isinstance(progress, dict):
        fail(f"{where}: progress missing")
    for key in ("level", "iteration", "pairs", "advances", "last_advance_ns"):
        if not is_u64(progress.get(key)):
            fail(f"{where}: progress {key!r} bad: {progress!r}")
    if not isinstance(progress.get("phase"), str):
        fail(f"{where}: progress phase bad: {progress!r}")
    spans = record.get("open_spans")
    if not isinstance(spans, list) or not spans \
            or not all(isinstance(s, str) for s in spans):
        fail(f"{where}: open_spans must be a non-empty list of span names: "
             f"{spans!r}")
    recent = record.get("recent")
    if not isinstance(recent, list):
        fail(f"{where}: recent missing")
    for event in recent:
        if not isinstance(event, dict) or not isinstance(
                event.get("name"), str) or not is_u64(event.get("t_ns")):
            fail(f"{where}: bad recent event {event!r}")
    depths = record.get("queue_depths")
    if not isinstance(depths, list):
        fail(f"{where}: queue_depths missing")
    for depth in depths:
        if not isinstance(depth, dict) or not is_u64(depth.get("source")) \
                or depth.get("lane") not in VALID_LANES \
                or not is_u64(depth.get("depth")):
            fail(f"{where}: bad queue depth {depth!r}")
    async_table = record.get("async")
    if not isinstance(async_table, dict):
        fail(f"{where}: async table missing")
    for key in ("locks_held", "grants_in_flight", "pairs_done"):
        if not is_u64(async_table.get(key)):
            fail(f"{where}: async {key!r} bad: {async_table!r}")
    check_rank_table(record.get("peers"), ranks, where)


def check_watch(path, ranks, allow_stalls, expect_stall):
    snapshots = 0
    stalls = 0
    last_seq = {}  # emitting rank -> last snapshot seq
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"line {line_no}: not valid JSON ({error})")
            if not isinstance(record, dict):
                fail(f"line {line_no}: record is not an object")
            schema = record.get("schema")
            if schema == "kappa.snapshot.v1":
                check_snapshot(record, ranks, line_no)
                rank, seq = record["rank"], record["seq"]
                if rank in last_seq and seq <= last_seq[rank]:
                    fail(f"line {line_no}: snapshot seq not increasing for "
                         f"rank {rank}: {seq} after {last_seq[rank]}")
                last_seq[rank] = seq
                snapshots += 1
            elif schema == "kappa.stall.v1":
                check_stall(record, ranks, line_no)
                stalls += 1
            else:
                fail(f"line {line_no}: unknown schema {schema!r}")
    if snapshots == 0:
        fail("no kappa.snapshot.v1 records — the sampler never ran")
    if stalls and not (allow_stalls or expect_stall):
        fail(f"{stalls} stall report(s) in a run expected to be clean")
    if expect_stall and stalls == 0:
        fail("--expect-stall, but no kappa.stall.v1 record present")
    print(f"check_obs_json: watch ok — {snapshots} snapshots, "
          f"{stalls} stall reports, {ranks} ranks")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = set(a for a in argv[1:] if a.startswith("--"))
    known_flags = {"--allow-stalls", "--expect-stall"}
    if len(args) != 3 or args[0] not in ("trace", "metrics", "watch") \
            or not flags <= known_flags \
            or (flags and args[0] != "watch"):
        print(__doc__, file=sys.stderr)
        return 2
    kind, path, ranks = args[0], args[1], int(args[2])
    if kind == "trace":
        check_trace(path, ranks)
    elif kind == "metrics":
        check_metrics(path, ranks)
    else:
        check_watch(path, ranks, "--allow-stalls" in flags,
                    "--expect-stall" in flags)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
