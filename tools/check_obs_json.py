#!/usr/bin/env python3
"""Validates kappa observability dumps (CI traced-smoke job).

usage:
  check_obs_json.py trace   <trace.json>   <expected_ranks>
  check_obs_json.py metrics <metrics.json> <expected_ranks>

Stdlib only. Checks the documented shapes (README "Observability"):

trace — Chrome "Trace Event Format": traceEvents is a non-empty list
whose entries carry ph in {M, X, C, i}, pid 0 and an integer tid (the
rank); every rank contributes at least one span; the span taxonomy's
phase spans are present; otherData pins num_ranks and per-rank
dropped/clock-offset arrays of the right length. A nonzero ring-overflow
drop count FAILS the check — the trace silently lost events, so the
buffer (KAPPA_TRACE_BUFFER) must grow.

metrics — schema kappa.metrics.v1: a {"schema", "metrics"} document
whose entries are {"type", "value"} pairs with the value's JSON shape
matching the declared type; the core key set partition.cut /
run.num_pes / comm.words_sent must be present and run.num_pes must equal
the expected rank count.
"""
import json
import sys

VALID_PH = {"M", "X", "C", "i"}
REQUIRED_SPANS = ("phase.coarsen", "phase.initial", "phase.refine")
REQUIRED_METRICS = ("partition.cut", "run.num_pes", "comm.words_sent",
                    "time.total_s", "run.backend")


def fail(message):
    print(f"check_obs_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, ranks):
    with open(path) as handle:
        doc = json.load(handle)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    span_ranks = set()
    span_names = set()
    for event in events:
        ph = event.get("ph")
        if ph not in VALID_PH:
            fail(f"bad ph in event {event!r}")
        if event.get("pid") != 0 or not isinstance(event.get("tid"), int):
            fail(f"bad pid/tid in event {event!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"bad ts in event {event!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"bad dur in event {event!r}")
            span_ranks.add(event["tid"])
            span_names.add(event.get("name"))
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("otherData missing")
    if other.get("num_ranks") != ranks:
        fail(f"num_ranks {other.get('num_ranks')!r}, expected {ranks}")
    dropped = other.get("dropped_per_rank")
    offsets = other.get("clock_offset_ns")
    if not isinstance(dropped, list) or len(dropped) != ranks:
        fail(f"dropped_per_rank wrong shape: {dropped!r}")
    if not isinstance(offsets, list) or len(offsets) != ranks:
        fail(f"clock_offset_ns wrong shape: {offsets!r}")
    if any(d != 0 for d in dropped):
        fail(f"ring-overflow drops {dropped} — raise KAPPA_TRACE_BUFFER")
    missing_ranks = set(range(ranks)) - span_ranks
    if missing_ranks:
        fail(f"ranks without any span: {sorted(missing_ranks)}")
    missing_spans = [n for n in REQUIRED_SPANS if n not in span_names]
    if missing_spans:
        fail(f"required spans missing: {missing_spans}")
    print(f"check_obs_json: trace ok — {len(events)} events, "
          f"{len(span_names)} span names, {ranks} ranks, 0 dropped")


def check_metrics(path, ranks):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != "kappa.metrics.v1":
        fail(f"schema {doc.get('schema')!r}, expected kappa.metrics.v1")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail("metrics missing or empty")
    shapes = {
        "u64": lambda v: isinstance(v, int) and v >= 0,
        "i64": lambda v: isinstance(v, int),
        "f64": lambda v: isinstance(v, (int, float)) or v is None,
        "str": lambda v: isinstance(v, str),
        "u64[]": lambda v: isinstance(v, list)
        and all(isinstance(x, int) and x >= 0 for x in v),
        "f64[]": lambda v: isinstance(v, list)
        and all(isinstance(x, (int, float)) or x is None for x in v),
    }
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or set(entry) != {"type", "value"}:
            fail(f"metric {name!r} is not a type/value pair: {entry!r}")
        checker = shapes.get(entry["type"])
        if checker is None:
            fail(f"metric {name!r} has unknown type {entry['type']!r}")
        if not checker(entry["value"]):
            fail(f"metric {name!r} value does not match type "
                 f"{entry['type']!r}: {entry['value']!r}")
    missing = [n for n in REQUIRED_METRICS if n not in metrics]
    if missing:
        fail(f"required metrics missing: {missing}")
    num_pes = metrics["run.num_pes"]["value"]
    if num_pes != ranks:
        fail(f"run.num_pes {num_pes}, expected {ranks}")
    print(f"check_obs_json: metrics ok — {len(metrics)} entries, "
          f"{ranks} ranks")


def main(argv):
    if len(argv) != 4 or argv[1] not in ("trace", "metrics"):
        print(__doc__, file=sys.stderr)
        return 2
    kind, path, ranks = argv[1], argv[2], int(argv[3])
    if kind == "trace":
        check_trace(path, ranks)
    else:
        check_metrics(path, ranks)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
