/// \file checks.cpp
/// \brief The four check families and the lint driver.
///
/// All checks are lexical by construction: the invariants they enforce
/// were designed (PRs 1-7) around section markers, call-site tags and
/// include lines, so a token walk is the right altitude — no libclang,
/// no build. What grep could not see and these checks can: nesting
/// (collectives under rank-divergent control flow), declarations feeding
/// later uses (range-for over a variable declared as an unordered
/// container), and annotations that no longer suppress anything.
#include <algorithm>
#include <climits>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "kappa_lint/lint.hpp"

namespace kappa_lint {

namespace {

bool file_in_scope(const Rule& rule, const SourceFile& file) {
  bool in = false;
  for (const std::string& p : rule.files) {
    if (glob_match(p, file.path)) {
      in = true;
      break;
    }
  }
  if (!in) return false;
  for (const std::string& p : rule.exclude) {
    if (glob_match(p, file.path)) return false;
  }
  return true;
}

/// Line region [first, last] a rule applies to, derived from its raw-text
/// section markers. A begin marker that never appears yields an empty
/// region (matching the old awk guards, whose flag never flipped on); a
/// missing end marker extends the region to EOF.
struct Region {
  int first = 1;
  int last = INT_MAX;
};

Region rule_region(const Rule& rule, const SourceFile& file) {
  Region region;
  if (!rule.begin_marker.empty()) {
    region.first = INT_MAX;  // empty unless the marker is found
    for (std::size_t l = 0; l < file.raw_lines.size(); ++l) {
      if (file.raw_lines[l].find(rule.begin_marker) != std::string::npos) {
        region.first = static_cast<int>(l + 1) + 1;  // after the marker
        break;
      }
    }
  }
  if (!rule.end_marker.empty() && region.first != INT_MAX) {
    for (std::size_t l = static_cast<std::size_t>(region.first);
         l < file.raw_lines.size(); ++l) {
      if (file.raw_lines[l].find(rule.end_marker) != std::string::npos) {
        region.last = static_cast<int>(l + 1) - 1;  // before the marker
        break;
      }
    }
  }
  return region;
}

bool in_region(const Region& region, int line) {
  return line >= region.first && line <= region.last;
}

std::string with_note(const Rule& rule, std::string message) {
  if (!rule.note.empty()) message += " — " + rule.note;
  return message;
}

bool contains(const std::vector<std::string>& items, const std::string& t) {
  return std::find(items.begin(), items.end(), t) != items.end();
}

// ----------------------------------------------------------- layering ----

void check_forbid_include(const Rule& rule, const SourceFile& file,
                          std::vector<Finding>& findings) {
  for (const Include& inc : file.includes) {
    bool hit = false;
    for (const std::string& prefix : rule.items) {
      if (inc.header.rfind(prefix, 0) == 0) {
        hit = true;
        break;
      }
    }
    if (!hit) continue;
    for (const std::string& prefix : rule.except) {
      if (inc.header.rfind(prefix, 0) == 0) {
        hit = false;
        break;
      }
    }
    if (!hit) continue;
    findings.push_back(
        {file.display_path, inc.line, rule.name,
         with_note(rule, "forbidden include \"" + inc.header + "\"")});
  }
}

void check_forbid_call(const Rule& rule, const SourceFile& file,
                       std::vector<Finding>& findings) {
  const Region region = rule_region(rule, file);
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!contains(rule.items, toks[i].text)) continue;
    if (toks[i + 1].text != "(") continue;
    if (rule.unqualified_only && i > 0) {
      const std::string& prev = toks[i - 1].text;
      if (prev == "." || prev == "->" || prev == "::") continue;
    }
    if (!in_region(region, toks[i].line)) continue;
    findings.push_back(
        {file.display_path, toks[i].line, rule.name,
         with_note(rule, "forbidden call " + toks[i].text + "()")});
  }
}

void check_forbid_symbol(const Rule& rule, const SourceFile& file,
                         std::vector<Finding>& findings) {
  const Region region = rule_region(rule, file);
  for (const Token& tok : file.tokens) {
    if (!contains(rule.items, tok.text)) continue;
    if (!in_region(region, tok.line)) continue;
    findings.push_back(
        {file.display_path, tok.line, rule.name,
         with_note(rule, "forbidden symbol " + tok.text)});
  }
}

// ------------------------------------------- collective divergence ----

/// Flags every collective invoked lexically inside an if/while whose
/// guard expression mentions a rank identifier (including the else branch
/// of such an if — both sides of a rank split diverge). This is the SPMD
/// deadlock shape: one rank enters the collective, its peers never do.
void check_divergence(const Rule& rule, const SourceFile& file,
                      std::vector<Finding>& findings) {
  const std::vector<Token>& toks = file.tokens;
  struct Frame {
    bool rank = false;
    int guard_line = 0;
  };
  std::vector<Frame> stack;
  // A guard parsed but its body not yet entered ('{' or single statement).
  bool have_pending = false;
  bool pending_rank = false;
  int pending_line = 0;
  // Active single-statement guard (if without braces), until ';' depth 0.
  bool stmt_active = false;
  bool stmt_rank = false;
  int stmt_line = 0;
  // '}' just closed a rank-guarded frame; an immediate 'else' inherits.
  bool after_close = false;
  bool closed_rank = false;
  int closed_line = 0;
  int paren_depth = 0;

  auto is_guard = [&](const std::string& t) {
    return contains(rule.guards, t);
  };
  auto is_collective = [&](const std::string& t) {
    return contains(rule.items, t);
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;

    if ((t == "if" || t == "while") && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      // 'else if' (and a braceless if nested as a guarded statement):
      // inherit divergence from the pending guard.
      bool rank = have_pending && pending_rank;
      int guard_line = rank ? pending_line : toks[i].line;
      after_close = false;
      have_pending = false;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          if (--depth == 0) break;
        } else if (is_guard(toks[j].text)) {
          rank = true;
          guard_line = toks[j].line;
        }
      }
      have_pending = true;
      pending_rank = rank;
      pending_line = guard_line;
      i = j;
      continue;
    }
    if (t == "else") {
      // The else branch of a rank-guarded if diverges exactly like the
      // then branch. Leave the pending flags for a following 'if' or '{'.
      have_pending = true;
      pending_rank = after_close && closed_rank;
      pending_line = closed_line;
      after_close = false;
      continue;
    }
    if (t == "{") {
      Frame frame;
      if (have_pending) {
        frame.rank = pending_rank;
        frame.guard_line = pending_line;
        have_pending = false;
      }
      stack.push_back(frame);
      after_close = false;
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) {
        after_close = true;
        closed_rank = stack.back().rank;
        closed_line = stack.back().guard_line;
        stack.pop_back();
      }
      continue;
    }
    after_close = false;
    if (have_pending) {
      // The guard governs a single statement: active until ';' depth 0.
      stmt_active = true;
      stmt_rank = pending_rank;
      stmt_line = pending_line;
      have_pending = false;
    }
    if (t == "(") {
      ++paren_depth;
    } else if (t == ")") {
      if (paren_depth > 0) --paren_depth;
    } else if (t == ";" && paren_depth == 0) {
      stmt_active = false;
    }

    if (is_collective(t) && i + 1 < toks.size() && toks[i + 1].text == "(") {
      bool guarded = stmt_active && stmt_rank;
      int guard_line = stmt_line;
      for (const Frame& frame : stack) {
        if (frame.rank) {
          guarded = true;
          guard_line = frame.guard_line;
          break;  // report the outermost divergent guard
        }
      }
      if (guarded) {
        findings.push_back(
            {file.display_path, toks[i].line, rule.name,
             with_note(rule, "collective " + t +
                                 "() under rank-divergent control flow "
                                 "(guard at line " +
                                 std::to_string(guard_line) +
                                 ") — potential SPMD deadlock")});
      }
    }
  }
}

// -------------------------------------------------------- determinism ----

/// Nondeterminism sources that must not feed partition state:
///  - entropy/wall-clock: std::random_device, the <chrono> clocks, time()
///  - pointer-keyed hashing (iteration order = allocation order)
///  - range-for over a variable declared as an unordered container
///    (iteration order = hash order; sort the keys or use a vector)
void check_determinism(const Rule& rule, const SourceFile& file,
                       std::vector<Finding>& findings) {
  const std::vector<Token>& toks = file.tokens;
  static const std::vector<std::string> kEntropy = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock"};

  // Pass 1: entropy tokens, pointer-keyed hashing, and the names of all
  // variables declared with an unordered container type.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (contains(kEntropy, t)) {
      findings.push_back({file.display_path, toks[i].line, rule.name,
                          with_note(rule, "nondeterminism source " + t)});
      continue;
    }
    if (t == "time" && i + 1 < toks.size() && toks[i + 1].text == "(" &&
        (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->" &&
                    toks[i - 1].text != "::"))) {
      findings.push_back(
          {file.display_path, toks[i].line, rule.name,
           with_note(rule, "nondeterminism source time()")});
      continue;
    }
    const bool is_container = contains(rule.containers, t);
    const bool is_hash = t == "hash";
    if ((is_container || is_hash) && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      // Scan the template argument list; '*' in the first (key) argument
      // is pointer-keyed hashing.
      int depth = 0;
      bool in_key = true;
      bool pointer_key = false;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "<") {
          ++depth;
        } else if (u == ">") {
          if (--depth == 0) break;
        } else if (u == "," && depth == 1) {
          in_key = false;
        } else if (u == "*" && depth == 1 && in_key) {
          pointer_key = true;
        } else if (u == ";" || u == "{") {
          break;  // not a template argument list after all
        }
      }
      if (j >= toks.size() || toks[j].text != ">") continue;
      if (pointer_key) {
        findings.push_back(
            {file.display_path, toks[i].line, rule.name,
             with_note(rule, "pointer-keyed hashing in " + t +
                                 "<...*,...> — iteration order becomes "
                                 "allocation order")});
      }
      if (is_container && j + 1 < toks.size()) {
        // Declarations: container<...> [&*const]* name
        std::size_t k = j + 1;
        while (k < toks.size() &&
               (toks[k].text == "&" || toks[k].text == "*" ||
                toks[k].text == "const")) {
          ++k;
        }
        if (k < toks.size() && !toks[k].text.empty() &&
            (std::isalpha(static_cast<unsigned char>(toks[k].text[0])) != 0 ||
             toks[k].text[0] == '_')) {
          unordered_vars.insert(toks[k].text);
        }
      }
    }
  }

  // Pass 2: range-for over one of those variables.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    bool classic = false;  // saw ';' at depth 1 before ':' — a classic for
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& u = toks[j].text;
      if (u == "(") {
        ++depth;
      } else if (u == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (u == ";" && depth == 1 && colon == 0) {
        classic = true;
      } else if (u == ":" && depth == 1 && colon == 0) {
        colon = j;
      }
    }
    if (classic || colon == 0 || close == 0) continue;
    // The range expression: a plain (possibly member-qualified) variable.
    // Anything with a call in it is a function result we cannot track.
    bool has_call = false;
    std::string last_ident;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const std::string& u = toks[j].text;
      if (u == "(") has_call = true;
      if (!u.empty() && (std::isalpha(static_cast<unsigned char>(u[0])) != 0 ||
                         u[0] == '_')) {
        last_ident = u;
      }
    }
    if (has_call || last_ident.empty()) continue;
    if (unordered_vars.count(last_ident) > 0) {
      findings.push_back(
          {file.display_path, toks[i].line, rule.name,
           with_note(rule, "range-for over unordered container '" +
                               last_ident +
                               "' — iteration order is hash order; sort "
                               "the keys or use a vector")});
    }
  }
}

// ------------------------------------------------- annotation hygiene ----

/// Applies `// kappa-lint: allow(check, "reason")` suppressions, then
/// turns the hygiene violations themselves into findings: a malformed
/// annotation, an annotation naming an unknown check, and a stale
/// annotation (one that suppressed nothing — so suppressions cannot
/// outlive the code they excuse).
void apply_annotations(const RuleTable& table, std::vector<SourceFile>& files,
                       std::vector<Finding>& findings) {
  auto find_rule = [&](const std::string& name) -> const Rule* {
    for (const Rule& rule : table.rules) {
      if (rule.name == name) return &rule;
    }
    return nullptr;
  };

  for (SourceFile& file : files) {
    for (Allow& allow : file.allows) {
      if (allow.malformed) continue;
      const Rule* rule = find_rule(allow.rule);
      if (rule == nullptr || !rule->suppressible) continue;
      // An annotation suppresses findings of its check on its own line or
      // on the line directly below (annotation-above style).
      auto it = findings.begin();
      while (it != findings.end()) {
        if (it->file == file.display_path && it->rule == allow.rule &&
            (it->line == allow.line || it->line == allow.line + 1)) {
          allow.used = true;
          it = findings.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const Allow& allow : file.allows) {
      if (allow.malformed) {
        findings.push_back({file.display_path, allow.line,
                            "malformed-suppression", allow.error});
        continue;
      }
      const Rule* rule = find_rule(allow.rule);
      if (rule == nullptr) {
        findings.push_back(
            {file.display_path, allow.line, "malformed-suppression",
             "allow() names unknown check '" + allow.rule + "'"});
        continue;
      }
      if (!rule->suppressible) {
        findings.push_back(
            {file.display_path, allow.line, "malformed-suppression",
             "check '" + allow.rule + "' cannot be suppressed"});
        continue;
      }
      if (!allow.used) {
        findings.push_back(
            {file.display_path, allow.line, "stale-suppression",
             "allow(" + allow.rule +
                 ") no longer suppresses anything — delete it"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> check_files(const RuleTable& table,
                                 std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const Rule& rule : table.rules) {
    for (const SourceFile& file : files) {
      if (!file_in_scope(rule, file)) continue;
      switch (rule.kind) {
        case RuleKind::kForbidInclude:
          check_forbid_include(rule, file, findings);
          break;
        case RuleKind::kForbidCall:
          check_forbid_call(rule, file, findings);
          break;
        case RuleKind::kForbidSymbol:
          check_forbid_symbol(rule, file, findings);
          break;
        case RuleKind::kDivergence:
          check_divergence(rule, file, findings);
          break;
        case RuleKind::kDeterminism:
          check_determinism(rule, file, findings);
          break;
      }
    }
  }
  apply_annotations(table, files, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

Report run(const Options& options, std::ostream& diag) {
  namespace fs = std::filesystem;
  Report report;

  std::ifstream rules_stream(options.rules_path);
  if (!rules_stream) {
    diag << "kappa-lint: cannot open rule table '" << options.rules_path
         << "'\n";
    report.exit_code = 2;
    return report;
  }
  std::stringstream rules_text;
  rules_text << rules_stream.rdbuf();
  RuleTable table;
  std::string error;
  if (!parse_rules(rules_text.str(), table, error)) {
    diag << "kappa-lint: " << error << "\n";
    report.exit_code = 2;
    return report;
  }
  report.rules_loaded = table.rules.size();

  if (options.self_check) {
    diag << "kappa-lint: rule table ok, " << table.rules.size()
         << " rules loaded";
    if (options.min_rules > 0) {
      diag << " (required: >= " << options.min_rules << ")";
    }
    diag << "\n";
    if (options.min_rules > 0 &&
        static_cast<int>(table.rules.size()) < options.min_rules) {
      diag << "kappa-lint: rule table shrank below the expected size — a "
              "guard was probably deleted instead of migrated\n";
      report.exit_code = 2;
    }
    return report;
  }

  std::vector<SourceFile> files;
  for (const std::string& root : options.roots) {
    if (!fs::exists(root)) {
      diag << "kappa-lint: no such directory '" << root << "'\n";
      report.exit_code = 2;
      return report;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      std::ifstream stream(path);
      std::stringstream text;
      text << stream.rdbuf();
      SourceFile file =
          lex_file(fs::path(path).lexically_relative(root).generic_string(),
                   text.str());
      file.display_path = path.generic_string();
      files.push_back(std::move(file));
    }
  }

  report.findings = check_files(table, files);
  for (const Finding& finding : report.findings) {
    diag << finding.file << ":" << finding.line << ": [" << finding.rule
         << "] " << finding.message << "\n";
  }
  if (report.findings.empty()) {
    diag << "kappa-lint: " << files.size() << " files clean ("
         << table.rules.size() << " rules)\n";
  } else {
    diag << "kappa-lint: " << report.findings.size() << " finding"
         << (report.findings.size() == 1 ? "" : "s") << " in " << files.size()
         << " files\n";
    report.exit_code = 1;
  }
  return report;
}

}  // namespace kappa_lint
