// Fixture: a miniature spmd_phases.cpp that satisfies every rule — the
// linter must stay silent here (and on the real tree). Section markers
// mirror the real file's.
#include <vector>

#include "parallel/pe_runtime.hpp"

namespace kappa {

void coarsen(PEContext& pe) {
  // Point-to-point only above the initial-partitioning marker.
  pe.send(0, {1, 2, 3});
}

// ------------------------------------------------ SPMD initial partition ----

void initial(PEContext& pe) {
  // Gathers are fine between the markers: the attempt pool is O(p).
  const auto entries = pe.all_gather_vectors({1});
  (void)entries;
}

// -------------------------------------------------------- SPMD refinement ----

void refine(PEContext& pe) {
  const auto deltas =
      // kappa-lint: allow(no-refinement-block-gathers, "O(moves) deltas only")
      pe.all_gather_vectors({});
  (void)deltas;
}

}  // namespace kappa
