// Fixture: nondeterminism sources feeding partition state — entropy,
// wall clock, pointer-keyed hashing, and hash-order iteration.
#include <chrono>
#include <random>
#include <unordered_map>

namespace kappa {

struct Node;

int entropy_seed() {
  std::random_device rd;  // fires: entropy
  return static_cast<int>(rd());
}

long wall_clock_tiebreak() {
  const auto now = std::chrono::steady_clock::now();  // fires: wall clock
  return now.time_since_epoch().count();
}

int pointer_keyed(const Node* node) {
  std::unordered_map<const Node*, int> ranks;  // fires: pointer-keyed hash
  return ranks[node];
}

int hash_order(int k) {
  std::unordered_map<int, int> blocks;
  blocks[k] = 1;
  int sum = 0;
  for (const auto& [node, block] : blocks) {  // fires: hash-order range-for
    sum += block;
  }
  std::unordered_map<int, int> weights;
  weights[k] = 2;
  return sum + weights.at(k);  // silent: keyed lookup, no iteration
}

}  // namespace kappa
