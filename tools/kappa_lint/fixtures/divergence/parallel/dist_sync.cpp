// Fixture: collectives under rank-divergent control flow — the SPMD
// deadlock shape. Four variants fire (if-block, else-branch, else-if,
// braceless single statement); the unguarded and rank-work-only calls
// must not.
#include "parallel/pe_runtime.hpp"

namespace kappa {

void deadlocks(PEContext& pe, int winner) {
  if (pe.rank() == winner) {
    pe.barrier();  // fires: only one rank arrives
  }

  if (pe.rank() == 0) {
    pe.send(1, {0});  // silent: point-to-point divergence is fine
  } else {
    const auto sum = pe.all_reduce_sum(1);  // fires: else of a rank split
    (void)sum;
  }

  if (pe.rank() == 0) {
    pe.send(1, {0});
  } else if (winner > 0) {
    pe.barrier();  // fires: else-if inherits the rank split
  }

  if (pe.rank() != 0) pe.barrier();  // fires: braceless single statement

  if (winner > 0) {
    const auto sum = pe.all_reduce_sum(1);  // silent: guard is rank-free
    (void)sum;
  }

  pe.barrier();  // silent: unconditional
}

}  // namespace kappa
