// Fixture: the removed free-function entry points — the unqualified call
// fires; the qualified member call is the current API and must not.
// (Fixtures are lexed, never compiled, so the callees need no decls.)
namespace kappa {

struct Partitioner;

int removed_entry_points(Partitioner& partitioner, int graph) {
  const int ok = partitioner.repartition(graph, 0);  // silent: qualified
  return ok + repartition(graph, 0);                 // fires: unqualified
}

}  // namespace kappa
