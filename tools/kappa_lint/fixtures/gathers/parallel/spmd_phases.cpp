// Fixture: one forbidden gather per section — coarsening (above the
// initial-partitioning marker), refinement (untagged), and the async
// section (unsuppressible even with an allow()).
#include <vector>

#include "parallel/pe_runtime.hpp"

namespace kappa {

void coarsen(PEContext& pe) {
  const auto maps = pe.all_gather_vectors({});  // fires: no-coarsening-gathers
  (void)maps;
}

// ------------------------------------------------ SPMD initial partition ----

void initial(PEContext& pe) {
  const auto pool = pe.all_gather(1);  // silent: between the markers
  (void)pool;
}

// -------------------------------------------------------- SPMD refinement ----

void refine(PEContext& pe) {
  const auto blocks = pe.all_gather_vectors({});  // fires: untagged
  (void)blocks;
}

// ----------------------------------------------- SPMD async refinement ----

void async_refine(PEContext& pe) {
  // kappa-lint: allow(no-async-gathers, "an allow() must not silence this")
  const auto locks = pe.all_gather(0);  // fires: unsuppressible
  (void)locks;
}

// ------------------------------------------- end SPMD async refinement ----

}  // namespace kappa
