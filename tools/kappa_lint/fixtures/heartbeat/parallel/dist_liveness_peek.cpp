// Fixture: an algorithm layer reaching into the kappa-watch machinery.
// The heartbeat lane and the liveness/queue introspection hooks exist so
// the *watch* layer (parallel/watch.cpp) can observe a run; the moment an
// algorithm steers itself by them, watched and unwatched runs diverge and
// the byte-identity guarantee is gone. heartbeat-lane-isolation flags
// every such use, unsuppressibly.
#include "parallel/pe_runtime.hpp"

namespace kappa {

void liveness_adaptive_pairing(PEContext& pe, int partner) {
  // fires: pairing decision steered by peer liveness — a watched run
  // would schedule different pairs than an unwatched one.
  if (pe.peer_health(partner).has_value()) {
    pe.send(partner, {0});
  }

  // fires: application payload smuggled onto the observer-only lane,
  // invisible to the modeled CommStats counters.
  pe.raw_send(partner, Lane::kHeartbeat, {42});

  // fires: backlog-adaptive behavior from transport introspection — the
  // drain order becomes timing-dependent.
  if (!pe.queue_depths().empty()) {
    pe.send(partner, {1});
  }

  // Silent: the sanctioned application lane and modeled counters.
  pe.send(partner, {2});
}

}  // namespace kappa
