// Fixture: the algorithm layer reaching into transport internals — both
// the forbidden includes and the Mailbox symbol must fire.
#include <sys/socket.h>

#include "parallel/channel.hpp"
#include "parallel/transport_tcp.hpp"

namespace kappa {

void leak() {
  Mailbox box;  // forbidden symbol above the transport layer
  (void)box;
}

}  // namespace kappa
