// Fixture: a sequential layer including src/parallel — only the
// sanctioned comm_stats header is allowed through.
#include "parallel/comm_stats.hpp"  // sanctioned: must NOT fire
#include "parallel/pe_runtime.hpp"  // forbidden: must fire

namespace kappa {

void fm() {}

}  // namespace kappa
