// Fixture: malformed suppressions — a missing reason string and an
// unknown check name. Both are errors.
#include <random>

namespace kappa {

int malformed() {
  std::random_device rd;  // kappa-lint: allow(determinism-sources)
  std::random_device rd2;  // kappa-lint: allow(no-such-check, "typo in the check name")
  return static_cast<int>(rd() + rd2());
}

}  // namespace kappa
