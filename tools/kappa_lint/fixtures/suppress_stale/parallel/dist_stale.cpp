// Fixture: a stale suppression — the annotation names a real check, but
// the line it guards no longer triggers it. Stale annotations are errors
// so suppressions cannot rot.
namespace kappa {

int clean_code() {
  int sum = 0;  // kappa-lint: allow(determinism-sources, "nothing here triggers it anymore")
  return sum;
}

}  // namespace kappa
