// Fixture: a correctly suppressed violation — same-line and line-above
// annotations, each with a reason. The linter must exit 0 here.
#include <random>

namespace kappa {

int tagged_entropy() {
  std::random_device rd;  // kappa-lint: allow(determinism-sources, "fixture: entropy never feeds partition state")
  // kappa-lint: allow(determinism-sources, "fixture: annotation-above style")
  std::random_device rd2;
  return static_cast<int>(rd() + rd2());
}

}  // namespace kappa
