// Fixture: a raw clock read in a partition-reaching layer — fires
// trace-clock-confinement AND determinism-sources (a wall-clock read is
// both a timing side channel the trace cannot see and a nondeterminism
// source).
#include <chrono>

namespace kappa {

long level_elapsed_ns() {
  const auto t = std::chrono::steady_clock::now();  // fires both rules
  return t.time_since_epoch().count();
}

}  // namespace kappa
