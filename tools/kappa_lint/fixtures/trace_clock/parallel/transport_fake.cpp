// Negative control: transport backends legitimately use deadlines — the
// parallel/transport_* carve-out keeps trace-clock-confinement and
// determinism-sources silent here.
#include <chrono>

namespace kappa {

long deadline_ns() {
  const auto t = std::chrono::steady_clock::now();  // silent: excluded
  return t.time_since_epoch().count();
}

}  // namespace kappa
