// Fixture: the refinement layer timing its own gain computations with a
// raw clock instead of util/trace.hpp's trace_now_ns().
#include <chrono>

namespace kappa {

long gain_window_ns() {
  const auto t = std::chrono::high_resolution_clock::now();  // fires both
  return t.time_since_epoch().count();
}

}  // namespace kappa
