// Fixture: an algorithm layer pulling values back out of the metrics
// registry — registry reads are reserved for core/ orchestration and the
// export layer.
#include "util/metrics.hpp"

namespace kappa {

unsigned long long cut_hint(const MetricsRegistry& registry) {  // fires
  return registry.u64("partition.cut");
}

}  // namespace kappa
