// Fixture: refinement adapting its behavior to trace state — the
// feedback loop trace-no-feedback exists to forbid. Writing spans is
// fine; *reading* the recorder breaks the traced-vs-untraced
// byte-identity guarantee.
#include "util/trace.hpp"

namespace kappa {

int adaptive_passes() {
  TraceRecorder* recorder = thread_trace();
  if (recorder == nullptr) return 1;
  int passes = 1;
  if (recorder->read_dropped() > 0) passes = 2;  // fires: read side
  passes += static_cast<int>(recorder->read_events().size() % 2);  // fires
  return passes;
}

}  // namespace kappa
