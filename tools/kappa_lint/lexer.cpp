/// \file lexer.cpp
/// \brief The lightweight C++ lexer behind kappa-lint.
///
/// Produces exactly what the checks need and nothing more: a token stream
/// with comments, string/char literals and preprocessor lines stripped
/// (so a commented-out `all_gather` can never fire a rule), the raw lines
/// (section markers live in comments and are matched on raw text), the
/// `#include` directives, and the parsed suppression annotations.
#include <cctype>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "kappa_lint/lint.hpp"

namespace kappa_lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses one `kappa-lint:` annotation found at \p pos of \p line.
Allow parse_annotation(const std::string& line, std::size_t pos,
                       int line_number) {
  Allow allow;
  allow.line = line_number;
  allow.malformed = true;  // until fully parsed
  std::size_t i = pos;     // points just past "kappa-lint:"
  auto skip_ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
  };
  skip_ws();
  if (line.compare(i, 5, "allow") != 0) {
    allow.error = "expected 'allow' after 'kappa-lint:'";
    return allow;
  }
  i += 5;
  skip_ws();
  if (i >= line.size() || line[i] != '(') {
    allow.error = "expected '(' after 'allow'";
    return allow;
  }
  ++i;
  skip_ws();
  const std::size_t name_begin = i;
  while (i < line.size() && (is_ident_char(line[i]) || line[i] == '-')) ++i;
  allow.rule = line.substr(name_begin, i - name_begin);
  if (allow.rule.empty()) {
    allow.error = "missing check name in allow(...)";
    return allow;
  }
  skip_ws();
  if (i >= line.size() || line[i] != ',') {
    allow.error = "missing reason string in allow(" + allow.rule +
                  ", \"...\") — every suppression must say why";
    return allow;
  }
  ++i;
  skip_ws();
  if (i >= line.size() || line[i] != '"') {
    allow.error = "missing reason string in allow(" + allow.rule +
                  ", \"...\") — every suppression must say why";
    return allow;
  }
  ++i;
  const std::size_t reason_begin = i;
  while (i < line.size() && line[i] != '"') ++i;
  if (i >= line.size()) {
    allow.error = "unterminated reason string";
    return allow;
  }
  allow.reason = line.substr(reason_begin, i - reason_begin);
  ++i;
  skip_ws();
  if (i >= line.size() || line[i] != ')') {
    allow.error = "expected ')' closing allow(...)";
    return allow;
  }
  if (allow.reason.empty()) {
    allow.error = "empty reason string in allow(" + allow.rule + ")";
    return allow;
  }
  allow.malformed = false;
  return allow;
}

/// Parses an `#include` directive from one raw line, if present.
bool parse_include(const std::string& line, std::string& header) {
  std::size_t i = 0;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  if (i >= line.size() || line[i] != '#') return false;
  ++i;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  if (line.compare(i, 7, "include") != 0) return false;
  i += 7;
  while (i < line.size() &&
         std::isspace(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
  }
  if (i >= line.size() || (line[i] != '"' && line[i] != '<')) return false;
  const char close = line[i] == '"' ? '"' : '>';
  ++i;
  const std::size_t begin = i;
  while (i < line.size() && line[i] != close) ++i;
  if (i >= line.size()) return false;
  header = line.substr(begin, i - begin);
  return true;
}

}  // namespace

SourceFile lex_file(std::string path, const std::string& contents) {
  SourceFile file;
  file.path = std::move(path);
  file.display_path = file.path;

  // Raw lines: section markers, includes and annotations are line-based.
  {
    std::string current;
    for (const char c : contents) {
      if (c == '\n') {
        file.raw_lines.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    file.raw_lines.push_back(std::move(current));
  }
  for (std::size_t l = 0; l < file.raw_lines.size(); ++l) {
    const std::string& line = file.raw_lines[l];
    std::string header;
    if (parse_include(line, header)) {
      file.includes.push_back({std::move(header), static_cast<int>(l + 1)});
    }
    const std::size_t pos = line.find("kappa-lint:");
    if (pos != std::string::npos) {
      file.allows.push_back(parse_annotation(line, pos + 11,
                                             static_cast<int>(l + 1)));
    }
  }

  // Token stream. A hand-rolled scanner: comments, literals and
  // preprocessor lines vanish; identifiers and numbers become one token;
  // '->' and '::' stay fused so qualified calls are recognizable.
  const std::size_t n = contents.size();
  std::size_t i = 0;
  int line = 1;
  auto advance = [&] {
    if (contents[i] == '\n') ++line;
    ++i;
  };
  bool at_line_start = true;
  while (i < n) {
    const char c = contents[i];
    if (c == '\n') {
      advance();
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance();
      continue;
    }
    // Preprocessor line (with continuations): skip entirely.
    if (at_line_start && c == '#') {
      while (i < n && contents[i] != '\n') {
        if (contents[i] == '\\' && i + 1 < n && contents[i + 1] == '\n') {
          advance();  // the backslash
        }
        advance();
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
      while (i < n && contents[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
      advance();
      advance();
      while (i + 1 < n && !(contents[i] == '*' && contents[i + 1] == '/')) {
        advance();
      }
      if (i + 1 < n) {
        advance();
        advance();
      } else {
        i = n;
      }
      continue;
    }
    // String / char literals collapse to an empty placeholder token.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int tok_line = line;
      advance();
      while (i < n && contents[i] != quote) {
        if (contents[i] == '\\' && i + 1 < n) advance();
        advance();
      }
      if (i < n) advance();
      file.tokens.push_back({"\"\"", tok_line});
      continue;
    }
    // Identifier / number.
    if (is_ident_start(c) ||
        std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const int tok_line = line;
      std::string text;
      while (i < n && (is_ident_char(contents[i]) ||
                       // keep 1e-5 / 0x1p+3 style exponents glued together
                       ((contents[i] == '+' || contents[i] == '-') &&
                        !text.empty() &&
                        (text.back() == 'e' || text.back() == 'E' ||
                         text.back() == 'p' || text.back() == 'P') &&
                        std::isdigit(static_cast<unsigned char>(text[0])) !=
                            0))) {
        text.push_back(contents[i]);
        advance();
      }
      file.tokens.push_back({std::move(text), tok_line});
      continue;
    }
    // Punctuators: fuse '->' and '::'; everything else is one character.
    const int tok_line = line;
    if (c == '-' && i + 1 < n && contents[i + 1] == '>') {
      advance();
      advance();
      file.tokens.push_back({"->", tok_line});
      continue;
    }
    if (c == ':' && i + 1 < n && contents[i + 1] == ':') {
      advance();
      advance();
      file.tokens.push_back({"::", tok_line});
      continue;
    }
    file.tokens.push_back({std::string(1, c), tok_line});
    advance();
  }
  return file;
}

}  // namespace kappa_lint
