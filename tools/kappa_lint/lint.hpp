/// \file lint.hpp
/// \brief kappa-lint: the SPMD invariant checker.
///
/// A self-contained static-analysis pass over the kappa source tree that
/// promotes the CI grep guards of PRs 1-7 into first-class checks. It is a
/// lightweight lexer plus an include-graph walker — deliberately not a
/// compiler frontend: every invariant it enforces is lexical by design
/// (section markers, call sites, include lines, guard expressions), which
/// keeps the tool dependency-free and fast enough to run on every push.
///
/// Four check families, driven by a declarative rule table (rules.kl):
///
///   1. layering              - the include graph must respect declared
///                              layer rules (forbid-include), and layer
///                              internals must not leak upward as symbols
///                              (forbid-symbol).
///   2. collective-divergence - a PEContext/PERuntime collective invoked
///                              lexically inside a conditional whose guard
///                              mentions a rank identifier is a potential
///                              SPMD deadlock (divergence).
///   3. determinism-sources   - std::random_device, wall clocks, pointer-
///                              keyed hashing and range-for iteration over
///                              unordered containers must not feed
///                              partition state (determinism).
///   4. annotation hygiene    - one uniform suppression syntax,
///                                // kappa-lint: allow(<check>, "<reason>")
///                              with malformed- and stale-suppression
///                              detection built in (a suppression that no
///                              longer suppresses anything is itself an
///                              error, so annotations cannot rot).
///
/// Exit codes: 0 clean, 1 findings, 2 configuration/usage error.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kappa_lint {

// ------------------------------------------------------------- lexing ----

/// One lexical token: an identifier/number, a string-literal placeholder,
/// or a (possibly two-character) punctuator. Comments and preprocessor
/// lines are stripped; string and char literals collapse to "".
struct Token {
  std::string text;
  int line = 0;
};

/// One `#include` directive, parsed from the raw lines.
struct Include {
  std::string header;  ///< path between the quotes/brackets
  int line = 0;
};

/// One parsed `// kappa-lint: allow(<check>, "<reason>")` annotation.
struct Allow {
  std::string rule;
  std::string reason;
  int line = 0;
  bool malformed = false;
  std::string error;  ///< why it failed to parse (when malformed)
  bool used = false;  ///< set when it suppressed at least one finding
};

/// A lexed source file, path reported root-relative ('/'-separated).
struct SourceFile {
  std::string path;
  std::string display_path;  ///< path as printed in findings
  std::vector<std::string> raw_lines;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<Allow> allows;
};

/// Lexes \p contents into tokens, includes, and suppression annotations.
SourceFile lex_file(std::string path, const std::string& contents);

// -------------------------------------------------------------- rules ----

enum class RuleKind {
  kForbidInclude,  ///< layering: no include of the listed header prefixes
  kForbidCall,     ///< no call of the listed functions (region-scoped)
  kForbidSymbol,   ///< no use of the listed identifiers (region-scoped)
  kDivergence,     ///< collectives under rank-divergent control flow
  kDeterminism,    ///< nondeterminism sources feeding partition state
};

/// One entry of the rule table (rules.kl).
struct Rule {
  std::string name;
  RuleKind kind = RuleKind::kForbidCall;
  std::vector<std::string> files;    ///< glob patterns, root-relative
  std::vector<std::string> exclude;  ///< glob patterns removed from files
  std::vector<std::string> items;    ///< headers / calls / symbols /
                                     ///< collectives, per kind
  std::vector<std::string> except;   ///< forbid-include: allowed prefixes
  std::vector<std::string> guards;   ///< divergence: rank identifiers
  std::vector<std::string> containers;  ///< determinism: container names
  std::string begin_marker;  ///< region begins after the first raw line
                             ///< containing this (empty: file start)
  std::string end_marker;    ///< region ends before the first raw line
                             ///< containing this after begin (empty: EOF)
  bool unqualified_only = false;  ///< forbid-call: member/qualified calls ok
  bool suppressible = true;       ///< false: allow() cannot silence it
  std::string note;               ///< appended to every finding message
};

struct RuleTable {
  std::vector<Rule> rules;
};

/// Parses the rules.kl DSL. Returns false and sets \p error on failure.
bool parse_rules(const std::string& contents, RuleTable& out,
                 std::string& error);

/// Glob match: '*' within a path segment, '**' across segments, '?' one
/// non-separator character.
bool glob_match(const std::string& pattern, const std::string& path);

// ------------------------------------------------------------- driver ----

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  std::string rules_path;
  std::vector<std::string> roots;
  bool self_check = false;  ///< validate the rule table and stop
  int min_rules = 0;        ///< self-check: required minimum table size
};

struct Report {
  std::vector<Finding> findings;
  std::size_t rules_loaded = 0;
  int exit_code = 0;  ///< 0 clean, 1 findings, 2 config error
};

/// Runs all checks plus the annotation-hygiene pass over \p files,
/// consuming suppressions. Findings are sorted by (file, line).
std::vector<Finding> check_files(const RuleTable& table,
                                 std::vector<SourceFile>& files);

/// Full CLI driver: loads rules, walks roots, lexes, checks, prints
/// findings to \p diag.
Report run(const Options& options, std::ostream& diag);

}  // namespace kappa_lint
