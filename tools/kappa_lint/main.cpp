/// \file main.cpp
/// \brief CLI entry point: kappa-lint [--rules <file>] [--self-check]
///        [--min-rules <n>] <root>...
///
/// Typical invocations:
///   kappa-lint --rules tools/kappa_lint/rules.kl src
///   kappa-lint --rules tools/kappa_lint/rules.kl --self-check --min-rules 11
#include <cstdlib>
#include <iostream>
#include <string>

#include "kappa_lint/lint.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: kappa-lint [--rules <rules.kl>] [--self-check]\n"
         "                  [--min-rules <n>] <root>...\n"
         "\n"
         "Checks the C++ sources under each <root> against the rule table.\n"
         "  --rules <file>   rule table (default: tools/kappa_lint/rules.kl)\n"
         "  --self-check     validate the rule table and exit\n"
         "  --min-rules <n>  with --self-check: fail if fewer rules loaded\n"
         "\n"
         "Suppressions: // kappa-lint: allow(<check>, \"<reason>\")\n"
         "on the flagged line or the line directly above. A suppression\n"
         "that no longer suppresses anything is itself an error.\n"
         "\n"
         "exit codes: 0 clean, 1 findings, 2 configuration error\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  kappa_lint::Options options;
  options.rules_path = "tools/kappa_lint/rules.kl";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      if (i + 1 >= argc) return usage();
      options.rules_path = argv[++i];
    } else if (arg == "--self-check") {
      options.self_check = true;
    } else if (arg == "--min-rules") {
      if (i + 1 >= argc) return usage();
      options.min_rules = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "kappa-lint: unknown option '" << arg << "'\n";
      return usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (!options.self_check && options.roots.empty()) return usage();
  return kappa_lint::run(options, std::cout).exit_code;
}
