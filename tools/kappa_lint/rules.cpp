/// \file rules.cpp
/// \brief Parser for the rules.kl rule-table DSL.
///
/// The table is declarative so that the invariant set reads like the CI
/// guards it replaced. Grammar (line-oriented):
///
///   # comment
///   rule <name> <kind> {
///     <key> = <value>[, <value>...]
///     ...
///   }
///
/// Kinds: forbid-include, forbid-call, forbid-symbol, divergence,
/// determinism. Values may be double-quoted (required when they contain
/// commas, '#', or leading/trailing spaces).
#include <cctype>
#include <string>
#include <vector>

#include "kappa_lint/lint.hpp"

namespace kappa_lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Strips a trailing # comment, respecting double quotes.
std::string strip_comment(const std::string& line) {
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') quoted = !quoted;
    if (line[i] == '#' && !quoted) return line.substr(0, i);
  }
  return line;
}

/// Splits a value list on top-level commas; unquotes quoted values.
std::vector<std::string> split_values(const std::string& text) {
  std::vector<std::string> values;
  std::string current;
  bool quoted = false;
  for (const char c : text) {
    if (c == '"') {
      quoted = !quoted;
      continue;  // quotes delimit, never appear in values
    }
    if (c == ',' && !quoted) {
      const std::string v = trim(current);
      if (!v.empty()) values.push_back(v);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  const std::string v = trim(current);
  if (!v.empty()) values.push_back(v);
  return values;
}

bool parse_kind(const std::string& text, RuleKind& kind) {
  if (text == "forbid-include") {
    kind = RuleKind::kForbidInclude;
  } else if (text == "forbid-call") {
    kind = RuleKind::kForbidCall;
  } else if (text == "forbid-symbol") {
    kind = RuleKind::kForbidSymbol;
  } else if (text == "divergence") {
    kind = RuleKind::kDivergence;
  } else if (text == "determinism") {
    kind = RuleKind::kDeterminism;
  } else {
    return false;
  }
  return true;
}

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true") {
    out = true;
  } else if (text == "false") {
    out = false;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool parse_rules(const std::string& contents, RuleTable& out,
                 std::string& error) {
  out.rules.clear();
  std::vector<std::string> lines;
  {
    std::string current;
    for (const char c : contents) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    lines.push_back(current);
  }

  Rule rule;
  bool in_rule = false;
  for (std::size_t l = 0; l < lines.size(); ++l) {
    const std::string line = trim(strip_comment(lines[l]));
    const std::string where = "rules.kl:" + std::to_string(l + 1) + ": ";
    if (line.empty()) continue;

    if (!in_rule) {
      // Expect: rule <name> <kind> {
      if (line.rfind("rule ", 0) != 0) {
        error = where + "expected 'rule <name> <kind> {', got '" + line + "'";
        return false;
      }
      std::vector<std::string> parts;
      std::string word;
      for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          if (!word.empty()) parts.push_back(word);
          word.clear();
        } else {
          word.push_back(c);
        }
      }
      if (!word.empty()) parts.push_back(word);
      if (parts.size() != 4 || parts[3] != "{") {
        error = where + "expected 'rule <name> <kind> {'";
        return false;
      }
      rule = Rule{};
      rule.name = parts[1];
      if (!parse_kind(parts[2], rule.kind)) {
        error = where + "unknown rule kind '" + parts[2] + "'";
        return false;
      }
      for (const Rule& existing : out.rules) {
        if (existing.name == rule.name) {
          error = where + "duplicate rule name '" + rule.name + "'";
          return false;
        }
      }
      in_rule = true;
      continue;
    }

    if (line == "}") {
      if (rule.files.empty()) {
        error = where + "rule '" + rule.name + "' declares no files";
        return false;
      }
      out.rules.push_back(rule);
      in_rule = false;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = where + "expected '<key> = <values>' inside rule '" +
              rule.name + "'";
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value_text = trim(line.substr(eq + 1));
    const std::vector<std::string> values = split_values(value_text);
    if (values.empty()) {
      error = where + "key '" + key + "' has no value";
      return false;
    }

    if (key == "files") {
      rule.files = values;
    } else if (key == "exclude") {
      rule.exclude = values;
    } else if (key == "except") {
      rule.except = values;
    } else if (key == "items" || key == "headers" || key == "calls" ||
               key == "symbols" || key == "collectives") {
      rule.items = values;
    } else if (key == "guards") {
      rule.guards = values;
    } else if (key == "containers") {
      rule.containers = values;
    } else if (key == "begin") {
      rule.begin_marker = values.front();
    } else if (key == "end") {
      rule.end_marker = values.front();
    } else if (key == "note") {
      rule.note = values.front();
    } else if (key == "unqualified-only") {
      if (!parse_bool(values.front(), rule.unqualified_only)) {
        error = where + "unqualified-only must be true or false";
        return false;
      }
    } else if (key == "suppressible") {
      if (!parse_bool(values.front(), rule.suppressible)) {
        error = where + "suppressible must be true or false";
        return false;
      }
    } else {
      error = where + "unknown key '" + key + "' in rule '" + rule.name + "'";
      return false;
    }
  }
  if (in_rule) {
    error = "rules.kl: unterminated rule '" + rule.name + "' (missing '}')";
    return false;
  }
  if (out.rules.empty()) {
    error = "rules.kl: empty rule table";
    return false;
  }
  return true;
}

bool glob_match(const std::string& pattern, const std::string& path) {
  // Recursive matcher: '*' stays within a path segment, '**' crosses
  // segments, '?' matches one non-separator character.
  struct Impl {
    static bool match(const std::string& p, std::size_t pi,
                      const std::string& s, std::size_t si) {
      while (pi < p.size()) {
        const char c = p[pi];
        if (c == '*') {
          const bool dstar = pi + 1 < p.size() && p[pi + 1] == '*';
          const std::size_t next = pi + (dstar ? 2 : 1);
          for (std::size_t k = si; k <= s.size(); ++k) {
            if (match(p, next, s, k)) return true;
            if (k < s.size() && !dstar && s[k] == '/') break;
          }
          return false;
        }
        if (si >= s.size()) return false;
        if (c == '?') {
          if (s[si] == '/') return false;
        } else if (c != s[si]) {
          return false;
        }
        ++pi;
        ++si;
      }
      return si == s.size();
    }
  };
  return Impl::match(pattern, 0, path, 0);
}

}  // namespace kappa_lint
