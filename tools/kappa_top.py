#!/usr/bin/env python3
"""kappa_top — renders a kappa-watch snapshot stream as a live rank table.

usage:
  kappa_top.py <watch.jsonl>                 one-shot: latest snapshot
  kappa_top.py <watch.jsonl> --follow        live: redraw as lines arrive
  kappa_top.py <watch.jsonl> --follow --interval 0.5

Reads the kappa.snapshot.v1 / kappa.stall.v1 JSONL stream that
`kappa_cli --watch-out=FILE` (or KAPPA_WATCH_OUT with launch_tcp.sh)
produces and renders the newest snapshot's per-rank table:

  rank  state    phase        level  iter  pairs  advances  age
     0  alive    refine           3     2    148      1052  12ms
     1  stalled  refine           3     2    141       980  2340ms

plus the snapshot's delta counters (wire bytes, heartbeat frames, pair
executions since the previous sample) and a trailer for every stall
report seen so far. --follow tails the file like `tail -f` and redraws
in place; a run that ends (no new lines) just stops updating — ^C to
quit. Stdlib only; works on a file another process is still appending
to.
"""
import json
import sys
import time

STATE_ORDER = {"dead": 0, "stalled": 1, "unknown": 2, "alive": 3}


def parse_args(argv):
    path = None
    follow = False
    interval = 1.0
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--follow":
            follow = True
        elif arg == "--interval":
            i += 1
            if i >= len(argv):
                return None
            interval = float(argv[i])
        elif arg.startswith("--"):
            return None
        elif path is None:
            path = arg
        else:
            return None
        i += 1
    if path is None:
        return None
    return path, follow, interval


def consume(handle, state):
    """Reads any newly appended lines; returns True if something changed."""
    changed = False
    while True:
        line = handle.readline()
        if not line:
            return changed
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a partially flushed trailing line; retry next poll
        schema = record.get("schema")
        if schema == "kappa.snapshot.v1":
            state["snapshot"] = record
            state["snapshots"] += 1
            changed = True
        elif schema == "kappa.stall.v1":
            state["stalls"].append(record)
            changed = True


def render(state):
    snapshot = state["snapshot"]
    lines = []
    if snapshot is None:
        lines.append("kappa_top: no snapshot yet")
    else:
        metrics = snapshot.get("metrics", {})
        lines.append(
            "kappa-watch  seq {}  ranks {}  (snapshot #{} from rank {})".format(
                snapshot.get("seq"), snapshot.get("num_ranks"),
                state["snapshots"], snapshot.get("rank")))
        lines.append(
            "  deltas: wire {}B out / {}B in, {} heartbeat frames, "
            "{} pairs, {} advances".format(
                metrics.get("wire_bytes_sent_delta", 0),
                metrics.get("wire_bytes_received_delta", 0),
                metrics.get("heartbeat_frames_delta", 0),
                metrics.get("pairs_delta", 0),
                metrics.get("advances_delta", 0)))
        lines.append("")
        lines.append("  rank  state    phase         level   iter"
                     "    pairs  advances       age")
        rows = sorted(snapshot.get("ranks", []),
                      key=lambda r: (STATE_ORDER.get(r.get("state"), 9),
                                     r.get("rank", 0)))
        for row in rows:
            lines.append("  {:>4}  {:<7}  {:<12} {:>6} {:>6} {:>8} {:>9} "
                         "{:>7}ms".format(
                             row.get("rank"), row.get("state"),
                             row.get("phase"), row.get("level"),
                             row.get("iteration"), row.get("pairs"),
                             row.get("advances"), row.get("age_ms")))
    if state["stalls"]:
        lines.append("")
        lines.append("  {} stall report(s):".format(len(state["stalls"])))
        for stall in state["stalls"][-5:]:
            spans = stall.get("open_spans", [])
            lines.append("    rank {} stalled {}ms in {} ({})".format(
                stall.get("rank"), stall.get("stalled_ms"),
                stall.get("progress", {}).get("phase"),
                " > ".join(spans) if spans else "no open span"))
    return "\n".join(lines)


def main(argv):
    parsed = parse_args(argv)
    if parsed is None:
        print(__doc__, file=sys.stderr)
        return 2
    path, follow, interval = parsed
    state = {"snapshot": None, "snapshots": 0, "stalls": []}
    try:
        handle = open(path)
    except OSError as error:
        print(f"kappa_top: cannot open {path}: {error}", file=sys.stderr)
        return 1
    with handle:
        consume(handle, state)
        if not follow:
            print(render(state))
            return 0 if state["snapshot"] is not None else 1
        try:
            # Redraw in place: home the cursor and clear to end of screen,
            # so a shrinking table leaves no stale rows behind.
            sys.stdout.write("\x1b[2J")
            while True:
                sys.stdout.write("\x1b[H" + render(state) + "\x1b[0J\n")
                sys.stdout.flush()
                time.sleep(interval)
                consume(handle, state)
        except KeyboardInterrupt:
            sys.stdout.write("\n")
            return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
